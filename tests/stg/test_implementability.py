"""Tests for autoconcurrency and output-persistency checking."""

import pytest

from repro.models import TABLE1_BENCHMARKS, vme_bus
from repro.models._build import connect, seq
from repro.stg.implementability import (
    check_autoconcurrency,
    check_output_persistency,
    is_output_persistent,
)
from repro.stg.stg import STG, SignalEdge


def autoconcurrent_stg():
    """Two concurrent branches both firing edges of signal z (z+ twice in
    parallel) — blatantly autoconcurrent and inconsistent, but the structural
    check does not need consistency."""
    stg = STG("auto", outputs=["z", "w"])
    stg.add_place("p0", tokens=1)
    stg.add_transition("fork", SignalEdge("w", +1))
    stg.add_arc("p0", "fork")
    for branch in ("l", "r"):
        stg.add_place(f"q{branch}")
        stg.add_arc("fork", f"q{branch}")
        stg.add_transition(f"z+{branch}", SignalEdge("z", +1))
        stg.add_arc(f"q{branch}", f"z+{branch}")
        stg.add_place(f"r{branch}")
        stg.add_arc(f"z+{branch}", f"r{branch}")
    return stg


def non_persistent_stg():
    """An output edge disabled by an input firing: after a+, both z+ (output)
    and b+ (input) are enabled, and b+ steals the shared place."""
    stg = STG("npers", inputs=["a", "b"], outputs=["z"])
    stg.add_place("start", tokens=1)
    stg.add_transition("a+", SignalEdge("a", +1))
    stg.add_arc("start", "a+")
    stg.add_place("shared")
    stg.add_arc("a+", "shared")
    stg.add_transition("z+", SignalEdge("z", +1))
    stg.add_transition("b+", SignalEdge("b", +1))
    stg.add_arc("shared", "z+")
    stg.add_arc("shared", "b+")
    stg.add_place("done_z")
    stg.add_place("done_b")
    stg.add_arc("z+", "done_z")
    stg.add_arc("b+", "done_b")
    return stg


class TestAutoconcurrency:
    def test_benchmarks_are_autoconcurrency_free(self, table1_stg):
        assert check_autoconcurrency(table1_stg) is None

    def test_detects_parallel_same_signal_edges(self):
        witness = check_autoconcurrency(autoconcurrent_stg())
        assert witness is not None
        assert witness.signal == "z"
        assert witness.event_a != witness.event_b

    def test_witness_trace_enables_both(self):
        stg = autoconcurrent_stg()
        witness = check_autoconcurrency(stg)
        marking = stg.net.initial_marking
        for name in witness.trace:
            marking = stg.net.fire_by_name(marking, name)
        enabled_signals = [
            stg.label(t).signal
            for t in stg.net.enabled(marking)
            if stg.label(t) is not None
        ]
        assert enabled_signals.count("z") >= 2

    def test_requires_stg_prefix(self):
        from repro.petri.generators import fork_join
        from repro.unfolding import unfold

        with pytest.raises(ValueError):
            check_autoconcurrency(unfold(fork_join(2)))

    def test_accepts_prebuilt_prefix(self, vme):
        from repro.unfolding import unfold

        assert check_autoconcurrency(unfold(vme)) is None


class TestPersistency:
    def test_vme_read_is_output_persistent(self, vme):
        assert is_output_persistent(vme)

    def test_detects_disabled_output(self):
        violations = check_output_persistency(non_persistent_stg())
        assert violations
        first = violations[0]
        assert first.signal == "z"
        assert first.disabled_edge == "z+"
        assert first.disabling_transition == "b+"
        assert first.trace == ["a+"]

    def test_same_signal_firing_not_a_violation(self):
        """Two transitions of the same label in choice: firing one is how
        the signal fires, not a disabling."""
        stg = STG("choice", outputs=["z"])
        stg.add_place("p", tokens=1)
        stg.add_transition("z+", SignalEdge("z", +1))
        stg.add_transition("z+/2", SignalEdge("z", +1))
        stg.add_arc("p", "z+")
        stg.add_arc("p", "z+/2")
        stg.add_place("q")
        stg.add_arc("z+", "q")
        stg.add_arc("z+/2", "q")
        assert is_output_persistent(stg)

    def test_input_choice_allowed(self):
        """Inputs may be disabled by inputs (the environment's choice);
        only outputs must be persistent."""
        stg = STG("inchoice", inputs=["a", "b"], outputs=[])
        stg.add_place("p", tokens=1)
        for s in ("a", "b"):
            stg.add_transition(f"{s}+", SignalEdge(s, +1))
            stg.add_arc("p", f"{s}+")
            stg.add_place(f"q{s}")
            stg.add_arc(f"{s}+", f"q{s}")
        assert is_output_persistent(stg)

    def test_mtr_duplex_output_choice_is_nonpersistent(self):
        """The multiple-transfer duplex variants choose between two output
        edges (req+/2 vs oe-) — a genuine output-persistency violation that
        a real flow would flag for arbitration."""
        stg = TABLE1_BENCHMARKS["DUP-4PH-MTR-A"]()
        violations = check_output_persistency(stg)
        assert violations
