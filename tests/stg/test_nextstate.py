"""Tests for Out(M), enabled signals and the next-state function Nxt_z."""

from repro.models._build import seq
from repro.stg.consistency import check_consistency
from repro.stg.nextstate import (
    enabled_edge_polarities,
    enabled_outputs,
    enabled_signals,
    next_state_value,
)
from repro.stg.stg import STG


class TestEnabledSets:
    def test_vme_initial(self, vme):
        m0 = vme.net.initial_marking
        assert enabled_signals(vme, m0) == frozenset({"dsr"})
        assert enabled_outputs(vme, m0) == frozenset()

    def test_vme_after_dsr(self, vme):
        m = vme.net.fire_by_name(vme.net.initial_marking, "dsr+")
        assert enabled_signals(vme, m) == frozenset({"lds"})
        assert enabled_outputs(vme, m) == frozenset({"lds"})

    def test_polarities(self, vme):
        m0 = vme.net.initial_marking
        assert enabled_edge_polarities(vme, m0, "dsr") == frozenset({+1})
        assert enabled_edge_polarities(vme, m0, "lds") == frozenset()

    def test_internal_counts_as_output(self, vme_csc):
        m = vme_csc.net.fire_by_name(vme_csc.net.initial_marking, "dsr+")
        assert "csc" in enabled_outputs(vme_csc, m)


class TestNxt:
    def test_nxt_flips_when_enabled(self, vme):
        result = check_consistency(vme)
        m0 = vme.net.initial_marking
        code0 = result.code_of_state(0)
        # dsr is 0 and dsr+ is enabled: Nxt_dsr = 1
        assert next_state_value(vme, m0, code0, "dsr") == 1
        # lds is 0 and not enabled: Nxt_lds = 0
        assert next_state_value(vme, m0, code0, "lds") == 0

    def test_nxt_holds_when_stable(self):
        stg = STG("hold", inputs=["a"], outputs=["z"])
        seq(stg, "a+", "z+", "a-", "z-")
        seq(stg, "z-", "a+", marked=True)
        result = check_consistency(stg)
        # state after a+ z+: z=1 and z- not yet enabled (needs a-)
        m = stg.net.fire_by_name(stg.net.initial_marking, "a+")
        m = stg.net.fire_by_name(m, "z+")
        state = result.graph.index[m]
        code = result.code_of_state(state)
        assert code[stg.signal_index("z")] == 1
        assert next_state_value(stg, m, code, "z") == 1
        # after a-, z- becomes enabled: Nxt_z drops to 0
        m2 = stg.net.fire_by_name(m, "a-")
        state2 = result.graph.index[m2]
        assert next_state_value(stg, m2, result.code_of_state(state2), "z") == 0

    def test_nxt_all_states_binary(self, vme_csc):
        result = check_consistency(vme_csc)
        for state in range(result.graph.num_states):
            m = result.graph.markings[state]
            code = result.code_of_state(state)
            for z in vme_csc.non_input_signals:
                assert next_state_value(vme_csc, m, code, z) in (0, 1)
