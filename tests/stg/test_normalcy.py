"""Tests for the state-graph normalcy check (paper Section 6, Figure 3)."""

from repro.models._build import seq
from repro.stg.normalcy import check_normalcy_state_graph
from repro.stg.stg import STG


class TestFigure3:
    def test_csc_resolved_vme_violates_normalcy_for_csc(self, vme_csc):
        """The paper's Figure 3: the csc-resolved VME controller is free of
        CSC conflicts but signal ``csc`` is neither p-normal nor n-normal."""
        report = check_normalcy_state_graph(vme_csc)
        assert not report.normal
        assert report.violating_signals() == ["csc"]
        verdict = report.per_signal["csc"]
        assert not verdict.p_normal and not verdict.n_normal
        assert verdict.p_witness is not None
        assert verdict.n_witness is not None

    def test_witnesses_are_genuine(self, vme_csc):
        report = check_normalcy_state_graph(vme_csc)
        for witness in (
            report.per_signal["csc"].p_witness,
            report.per_signal["csc"].n_witness,
        ):
            # codes ordered componentwise
            assert all(
                a <= b for a, b in zip(witness.code_low, witness.code_high)
            )
            if witness.kind == "p":
                assert witness.nxt_low > witness.nxt_high
            else:
                assert witness.nxt_low < witness.nxt_high

    def test_other_vme_signals_normal(self, vme_csc):
        report = check_normalcy_state_graph(vme_csc)
        for signal in ("dtack", "lds", "d"):
            assert report.per_signal[signal].normal


class TestSimpleCases:
    def test_buffer_is_normal(self):
        stg = STG("buf", inputs=["a"], outputs=["z"])
        seq(stg, "a+", "z+", "a-", "z-")
        seq(stg, "z-", "a+", marked=True)
        report = check_normalcy_state_graph(stg)
        assert report.normal
        # z follows a: monotonically increasing next-state function
        assert report.per_signal["z"].p_normal

    def test_inverter_is_n_normal(self):
        stg = STG("inv", inputs=["a"], outputs=["z"])
        stg.set_initial_value("z", 1)
        seq(stg, "a+", "z-", "a-", "z+")
        seq(stg, "z+", "a+", marked=True)
        report = check_normalcy_state_graph(stg)
        verdict = report.per_signal["z"]
        assert verdict.normal
        assert verdict.n_normal
        assert not verdict.p_normal

    def test_normalcy_implies_csc_on_benchmarks(self, table1_stg):
        """Normalcy implies CSC ([16]): any benchmark failing CSC must fail
        normalcy as well."""
        from repro.stg.stategraph import build_state_graph

        graph = build_state_graph(table1_stg)
        report = check_normalcy_state_graph(table1_stg, graph)
        if report.normal:
            assert graph.has_csc()
