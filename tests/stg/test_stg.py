"""Tests for the STG class and signal edge labels."""

import pytest

from repro.exceptions import NetStructureError
from repro.stg.stg import STG, SignalEdge, TAU


class TestSignalEdge:
    def test_parse_and_str(self):
        edge = SignalEdge.parse("lds+")
        assert edge.signal == "lds"
        assert edge.polarity == 1
        assert str(edge) == "lds+"
        assert str(SignalEdge.parse("d-")) == "d-"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            SignalEdge.parse("lds")
        with pytest.raises(ValueError):
            SignalEdge.parse("+")

    def test_polarity_validated(self):
        with pytest.raises(ValueError):
            SignalEdge("a", 2)

    def test_hashable(self):
        assert SignalEdge("a", 1) == SignalEdge("a", 1)
        assert len({SignalEdge("a", 1), SignalEdge("a", 1)}) == 1


class TestSTGConstruction:
    def test_signal_sets(self):
        stg = STG("x", inputs=["a"], outputs=["b"], internal=["c"])
        assert stg.signals == ["a", "b", "c"]
        assert stg.non_input_signals == ["b", "c"]
        assert stg.is_output_like("b")
        assert stg.is_output_like("c")
        assert not stg.is_output_like("a")

    def test_duplicate_signal_rejected(self):
        with pytest.raises(NetStructureError):
            STG("x", inputs=["a"], outputs=["a"])

    def test_undeclared_signal_label_rejected(self):
        stg = STG("x", inputs=["a"])
        with pytest.raises(NetStructureError):
            stg.add_transition("z+", SignalEdge("z", 1))

    def test_dummy_transitions(self):
        stg = STG("x", inputs=["a"])
        t = stg.add_transition("eps", TAU)
        assert stg.is_dummy(t)
        assert stg.has_dummies()
        assert stg.signal_change(t) == (None, 0)

    def test_signal_change(self):
        stg = STG("x", inputs=["a"], outputs=["b"])
        ta = stg.add_transition("a+", SignalEdge("a", 1))
        tb = stg.add_transition("b-", SignalEdge("b", -1))
        assert stg.signal_change(ta) == (0, 1)
        assert stg.signal_change(tb) == (1, -1)

    def test_edge_transitions_and_transitions_of(self):
        stg = STG("x", outputs=["z"])
        t1 = stg.add_transition("z+", SignalEdge("z", 1))
        t2 = stg.add_transition("z+/2", SignalEdge("z", 1))
        t3 = stg.add_transition("z-", SignalEdge("z", -1))
        assert stg.transitions_of("z") == [t1, t2, t3]
        assert stg.edge_transitions("z", +1) == [t1, t2]
        assert stg.edge_transitions("z", -1) == [t3]

    def test_unique_transition_name(self):
        stg = STG("x", outputs=["z"])
        edge = SignalEdge("z", 1)
        assert stg.unique_transition_name(edge) == "z+"
        stg.add_edge_transition(edge)
        assert stg.unique_transition_name(edge) == "z+/1"
        stg.add_edge_transition(edge)
        assert stg.unique_transition_name(edge) == "z+/2"

    def test_initial_value_validation(self):
        stg = STG("x", inputs=["a"])
        stg.set_initial_value("a", 1)
        assert stg.declared_initial_code == {"a": 1}
        with pytest.raises(NetStructureError):
            stg.set_initial_value("nope", 0)
        with pytest.raises(NetStructureError):
            stg.set_initial_value("a", 2)

    def test_copy_is_independent(self, vme):
        clone = vme.copy("clone")
        clone.set_initial_value("dsr", 1)
        assert "dsr" not in vme.declared_initial_code
        assert clone.net.num_places == vme.net.num_places

    def test_stats(self, vme):
        stats = vme.stats()
        assert stats == {"places": 11, "transitions": 10, "signals": 5}

    def test_signal_index_unknown(self, vme):
        with pytest.raises(NetStructureError):
            vme.signal_index("bogus")
