"""Tests for the STG consistency check (paper Section 2.1)."""

import pytest

from repro.exceptions import InconsistentSTGError
from repro.models._build import seq
from repro.stg.consistency import check_consistency, is_consistent
from repro.stg.stg import STG, SignalEdge


def simple_cycle_stg():
    stg = STG("cyc", inputs=["a"], outputs=["b"])
    seq(stg, "a+", "b+", "a-", "b-")
    seq(stg, "b-", "a+", marked=True)
    return stg


class TestConsistent:
    def test_simple_cycle(self):
        result = check_consistency(simple_cycle_stg())
        assert result.initial_code == (0, 0)
        assert len(result.deltas) == result.graph.num_states

    def test_vme_is_consistent(self, vme):
        result = check_consistency(vme)
        # all signals start low in the VME read cycle
        assert result.initial_code == (0,) * 5

    def test_initially_high_signal(self):
        stg = STG("high", outputs=["z"])
        seq(stg, "z-", "z+")
        seq(stg, "z+", "z-", marked=True)
        result = check_consistency(stg)
        assert result.initial_code == (1,)

    def test_declared_value_for_constant_signal(self):
        stg = STG("const", inputs=["a"], outputs=["z"])
        seq(stg, "a+", "a-")
        seq(stg, "a-", "a+", marked=True)
        stg.set_initial_value("z", 1)
        result = check_consistency(stg)
        assert result.initial_code[stg.signal_index("z")] == 1

    def test_code_of_state(self):
        stg = simple_cycle_stg()
        result = check_consistency(stg)
        codes = {result.code_of_state(s) for s in range(result.graph.num_states)}
        assert codes == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_all_benchmarks_consistent(self, table1_stg):
        assert is_consistent(table1_stg)


class TestInconsistent:
    def test_double_rise(self):
        # a+ twice in a row with no a- in between
        stg = STG("bad", inputs=["a"])
        seq(stg, "a+", "a+/2")
        seq(stg, "a+/2", "a+", marked=True)
        with pytest.raises(InconsistentSTGError):
            check_consistency(stg)
        assert not is_consistent(stg)

    def test_path_dependent_code(self):
        # two branches reach the same final place with different codes
        stg = STG("split", inputs=["a"], outputs=["b"])
        stg.add_place("start", tokens=1)
        stg.add_place("end")
        stg.add_transition("a+", SignalEdge("a", 1))
        stg.add_transition("b+", SignalEdge("b", 1))
        stg.add_arc("start", "a+")
        stg.add_arc("start", "b+")
        stg.add_arc("a+", "end")
        stg.add_arc("b+", "end")
        with pytest.raises(InconsistentSTGError):
            check_consistency(stg)

    def test_declared_value_contradiction(self):
        stg = STG("contra", inputs=["a"])
        seq(stg, "a+", "a-")
        seq(stg, "a-", "a+", marked=True)
        stg.set_initial_value("a", 1)  # but the first edge is rising
        with pytest.raises(InconsistentSTGError):
            check_consistency(stg)

    def test_dummies_do_not_affect_code(self):
        stg = STG("eps", inputs=["a"])
        stg.add_place("p0", tokens=1)
        stg.add_place("p1")
        stg.add_place("p2")
        stg.add_transition("a+", SignalEdge("a", 1))
        stg.add_transition("eps", None)
        stg.add_arc("p0", "a+")
        stg.add_arc("a+", "p1")
        stg.add_arc("p1", "eps")
        stg.add_arc("eps", "p2")
        result = check_consistency(stg)
        assert result.initial_code == (0,)
