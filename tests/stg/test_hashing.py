"""Tests for the canonical, order-insensitive STG content hash."""

import itertools

from repro.models import vme_bus
from repro.stg.hashing import canonical_stg_form, canonical_stg_hash
from repro.stg.stg import STG, SignalEdge

#: A small consistent cyclic STG (a+ b+ a- b-)* described declaratively so
#: it can be built with places/transitions/arcs inserted in any order.
PLACES = [("p0", 1), ("p1", 0), ("p2", 0), ("p3", 0)]
TRANSITIONS = [
    ("a+", SignalEdge("a", +1)),
    ("b+", SignalEdge("b", +1)),
    ("a-", SignalEdge("a", -1)),
    ("b-", SignalEdge("b", -1)),
]
ARCS = [
    ("p0", "a+"),
    ("a+", "p1"),
    ("p1", "b+"),
    ("b+", "p2"),
    ("p2", "a-"),
    ("a-", "p3"),
    ("p3", "b-"),
    ("b-", "p0"),
]
_ALL = (0, 1, 2, 3)


def build(place_order=_ALL, transition_order=_ALL, arc_order=None, name="t"):
    stg = STG(name, inputs=["a"], outputs=["b"])
    for i in place_order:
        stg.add_place(*PLACES[i])
    for i in transition_order:
        stg.add_transition(*TRANSITIONS[i])
    for arc in arc_order or range(len(ARCS)):
        stg.add_arc(*ARCS[arc])
    return stg


class TestOrderInsensitivity:
    def test_place_reordering(self):
        reference = canonical_stg_hash(build())
        for order in itertools.permutations(range(4)):
            assert canonical_stg_hash(build(place_order=order)) == reference

    def test_transition_reordering(self):
        reference = canonical_stg_hash(build())
        for order in itertools.permutations(range(4)):
            assert canonical_stg_hash(build(transition_order=order)) == reference

    def test_arc_reordering(self):
        reference = canonical_stg_hash(build())
        assert (
            canonical_stg_hash(build(arc_order=list(reversed(range(len(ARCS))))))
            == reference
        )

    def test_joint_reordering(self):
        reference = canonical_stg_hash(build())
        shuffled = build(
            place_order=(2, 0, 3, 1),
            transition_order=(1, 3, 2, 0),
            arc_order=[3, 0, 7, 5, 2, 6, 4, 1],
        )
        assert canonical_stg_hash(shuffled) == reference
        assert canonical_stg_form(shuffled) == canonical_stg_form(build())

    def test_net_name_is_metadata(self):
        assert canonical_stg_hash(build(name="x")) == canonical_stg_hash(
            build(name="y")
        )

    def test_rebuilt_model_hashes_identically(self):
        assert vme_bus().content_hash() == vme_bus().content_hash()


class TestContentSensitivity:
    def test_initial_marking_matters(self):
        other = build()
        other.net.set_tokens("p1", 1)
        assert canonical_stg_hash(other) != canonical_stg_hash(build())

    def test_label_matters(self):
        stg = STG("t", inputs=["a"], outputs=["b"])
        for spec in PLACES:
            stg.add_place(*spec)
        stg.add_transition("a+", SignalEdge("a", +1))
        stg.add_transition("b+", SignalEdge("b", -1))  # b- labelled "b+"
        stg.add_transition("a-", SignalEdge("a", -1))
        stg.add_transition("b-", SignalEdge("b", +1))  # b+ labelled "b-"
        for arc in ARCS:
            stg.add_arc(*arc)
        assert canonical_stg_hash(stg) != canonical_stg_hash(build())

    def test_signal_kind_matters(self):
        moved = STG("t", inputs=["a", "b"])  # b demoted from output to input
        for spec in PLACES:
            moved.add_place(*spec)
        for spec in TRANSITIONS:
            moved.add_transition(*spec)
        for arc in ARCS:
            moved.add_arc(*arc)
        assert canonical_stg_hash(moved) != canonical_stg_hash(build())

    def test_pinned_initial_code_matters(self):
        pinned = build()
        pinned.set_initial_value("a", 1)
        assert canonical_stg_hash(pinned) != canonical_stg_hash(build())

    def test_transition_name_matters(self):
        renamed = STG("t", inputs=["a"], outputs=["b"])
        for spec in PLACES:
            renamed.add_place(*spec)
        renamed.add_transition("a+/1", SignalEdge("a", +1))
        renamed.add_transition("b+", SignalEdge("b", +1))
        renamed.add_transition("a-", SignalEdge("a", -1))
        renamed.add_transition("b-", SignalEdge("b", -1))
        for src, dst in ARCS:
            renamed.add_arc(
                "a+/1" if src == "a+" else src, "a+/1" if dst == "a+" else dst
            )
        assert canonical_stg_hash(renamed) != canonical_stg_hash(build())


class TestDigestShape:
    def test_hex_sha256(self):
        digest = canonical_stg_hash(build())
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_method_delegates(self):
        assert build().content_hash() == canonical_stg_hash(build())
