"""Tests for the astg .g STG format reader/writer."""

import pytest

from repro.exceptions import ParseError
from repro.models import TABLE1_BENCHMARKS, vme_bus
from repro.stg.consistency import check_consistency
from repro.stg.parser import parse_stg, write_stg
from repro.stg.stategraph import build_state_graph

VME_G = """
.model vme
.inputs dsr ldtack
.outputs dtack lds d
.graph
dsr+ lds+
lds+ ldtack+
ldtack+ d+
d+ dtack+
dtack+ dsr-
dsr- d-
d- lds-
lds- ldtack-
ldtack- lds+
d- dtack-
dtack- dsr+
.marking { <ldtack-,lds+> <dtack-,dsr+> }
.end
"""


class TestParse:
    def test_vme_from_text_matches_builder(self, vme):
        parsed = parse_stg(VME_G)
        assert parsed.stats() == vme.stats()
        assert set(parsed.inputs) == set(vme.inputs)
        sg_a = build_state_graph(parsed)
        sg_b = build_state_graph(vme)
        assert sg_a.num_states == sg_b.num_states
        assert sg_a.has_csc() == sg_b.has_csc()

    def test_instance_suffixes(self):
        text = """
.model multi
.outputs z
.graph
z+ z-
z- z+/2
z+/2 z-/2
z-/2 z+
.marking { <z-/2,z+> }
.end
"""
        stg = parse_stg(text)
        assert stg.net.num_transitions == 4
        assert len(stg.edge_transitions("z", +1)) == 2

    def test_dummy_transitions(self):
        text = """
.model dum
.inputs a
.dummy eps
.graph
a+ eps
eps a-
a- a+
.marking { <a-,a+> }
.end
"""
        stg = parse_stg(text)
        assert stg.has_dummies()
        assert sum(stg.is_dummy(t) for t in range(stg.net.num_transitions)) == 1

    def test_explicit_places(self):
        text = """
.model pl
.inputs a b
.graph
p0 a+
a+ p1
p1 b+
b+ p0
.marking { p0 }
.end
"""
        stg = parse_stg(text)
        assert stg.net.has_place("p0")
        assert stg.net.initial_marking[stg.net.place_index("p0")] == 1

    def test_internal_and_initial(self):
        text = """
.model ii
.inputs a
.internal x
.graph
a+ x+
x+ a-
a- x-
x- a+
.marking { <x-,a+> }
.initial a=0 x=0
.end
"""
        stg = parse_stg(text)
        assert stg.internal == ["x"]
        assert stg.declared_initial_code == {"a": 0, "x": 0}

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_stg(".model x\n.graph\n.marking { }\n")  # missing .end
        with pytest.raises(ParseError):
            parse_stg(".model x\n.bogus\n.end")
        with pytest.raises(ParseError):
            parse_stg(".model x\n.inputs a\n.graph\na+\n.end")  # 1-token line
        with pytest.raises(ParseError):
            parse_stg(
                ".model x\n.inputs a\n.graph\np q\n.end"
            )  # place-to-place arc
        with pytest.raises(ParseError):
            parse_stg(
                ".model x\n.inputs a\n.graph\na+ a-\n.marking { <a-,a+> }\n.end"
            )  # marking references unknown implicit place

    def test_bad_initial_value(self):
        with pytest.raises(ParseError):
            parse_stg(".model x\n.inputs a\n.initial a=2\n.end")


class TestRoundtrip:
    @pytest.mark.parametrize(
        "name", sorted(TABLE1_BENCHMARKS), ids=sorted(TABLE1_BENCHMARKS)
    )
    def test_all_benchmarks_roundtrip(self, name):
        original = TABLE1_BENCHMARKS[name]()
        recovered = parse_stg(write_stg(original))
        assert recovered.stats() == original.stats()
        sg_a = build_state_graph(original)
        sg_b = build_state_graph(recovered)
        assert sg_a.num_states == sg_b.num_states
        assert sg_a.has_usc() == sg_b.has_usc()
        assert sg_a.has_csc() == sg_b.has_csc()

    def test_writer_emits_marking(self, vme):
        text = write_stg(vme)
        assert ".marking" in text
        assert ".model vme-read" in text


class TestSourceSpans:
    def test_signal_transition_place_spans(self):
        text = (
            ".model spans\n"
            ".inputs a\n"
            ".outputs b\n"
            ".graph\n"
            "a+ p\n"
            "p b+\n"
            "b+ q\n"
            "q a-\n"
            "a- b-\n"
            "b- a+\n"
            ".marking { q }\n"
            ".end\n"
        )
        stg = parse_stg(text, filename="spans.g")
        spans = stg.source_map
        assert spans is not None
        # .inputs is line 2; the token 'a' starts at column 9
        a = spans.signal("a")
        assert (a.file, a.line, a.column, a.length) == ("spans.g", 2, 9, 1)
        assert str(a) == "spans.g:2:9"
        b = spans.signal("b")
        assert (b.line, b.column) == (3, 10)
        # first occurrence wins: a+ appears first on line 5, column 1
        t = spans.transition("a+")
        assert (t.line, t.column, t.length) == (5, 1, 2)
        p = spans.place("p")
        assert (p.line, p.column) == (5, 4)
        # a comment shifts nothing: spans refer to the raw line
        commented = parse_stg("# hi\n.model c\n.outputs z\n.graph\nz+ z-\nz- z+\n.marking { <z-,z+> }\n.end\n")
        assert commented.source_map.signal("z").line == 3

    def test_implicit_place_gets_span(self):
        stg = parse_stg(
            ".model i\n.outputs z\n.graph\nz+ z-\nz- z+\n"
            ".marking { <z-,z+> }\n.end\n"
        )
        span = stg.source_map.place("<z-,z+>")
        assert span is not None and span.line == 5

    def test_copy_preserves_source_map(self):
        stg = parse_stg(
            ".model c\n.outputs z\n.graph\nz+ z-\nz- z+\n"
            ".marking { <z-,z+> }\n.end\n"
        )
        clone = stg.copy()
        assert clone.source_map is not None
        assert clone.source_map.signal("z") == stg.source_map.signal("z")


class TestDuplicateSignalDeclarations:
    def test_output_and_internal_is_a_parse_error(self):
        text = (
            ".model dup\n"
            ".outputs a\n"
            ".internal a\n"
            ".graph\n"
            "a+ a-\n"
            "a- a+\n"
            ".marking { <a-,a+> }\n"
            ".end\n"
        )
        with pytest.raises(ParseError) as err:
            parse_stg(text)
        message = str(err.value)
        assert "declared twice" in message
        assert ".internal" in message and ".outputs" in message
        assert "line 3" in message  # the re-declaration site

    def test_input_and_output_is_a_parse_error(self):
        with pytest.raises(ParseError, match="declared twice"):
            parse_stg(".model d\n.inputs a\n.outputs a\n.graph\na+ a-\n.end\n")

    def test_same_class_duplicate_is_a_parse_error(self):
        with pytest.raises(ParseError, match="declared twice"):
            parse_stg(".model d\n.inputs a a\n.graph\na+ a-\n.end\n")
