"""Tests for the explicit state graph and its USC/CSC conflict detection.

This module also pins the paper's Figure 1 facts about the VME bus
controller: the CSC conflict between two states with code 10110 where one
enables output ``d`` and the other output ``lds``.
"""

import pytest

from repro.stg.stategraph import build_state_graph
from tests.conftest import TABLE1_VERDICTS


class TestVMEFigure1:
    def test_conflict_exists(self, vme):
        graph = build_state_graph(vme)
        assert not graph.has_usc()
        assert not graph.has_csc()

    def test_conflict_code_matches_paper(self, vme):
        """The paper reports the conflicting code 10110 in signal order
        (dsr, dtack, lds, ldtack, d); our declared order is the same."""
        graph = build_state_graph(vme)
        conflicts = graph.csc_conflicts()
        assert conflicts
        orders = {tuple(vme.signals)}
        assert orders == {("dsr", "ldtack", "dtack", "lds", "d")}
        # re-order the code into the paper's order for comparison
        paper_order = ["dsr", "dtack", "lds", "ldtack", "d"]
        indices = [vme.signals.index(s) for s in paper_order]
        codes = {
            tuple(c.code[i] for i in indices) for c in conflicts
        }
        assert (1, 0, 1, 1, 0) in codes

    def test_conflict_outs_match_paper(self, vme):
        graph = build_state_graph(vme)
        for conflict in graph.csc_conflicts():
            outs = {conflict.out_a, conflict.out_b}
            if outs == {frozenset({"d"}), frozenset({"lds"})}:
                break
        else:
            pytest.fail("the Figure 1 conflict (Out {d} vs {lds}) not found")

    def test_trace_to_conflict_replays(self, vme):
        graph = build_state_graph(vme)
        conflict = graph.csc_conflicts()[0]
        trace = graph.trace_to(conflict.state_b)
        marking = vme.net.initial_marking
        for name in trace:
            marking = vme.net.fire_by_name(marking, name)
        assert marking == conflict.marking_b


class TestVerdicts:
    def test_table1_verdicts(self, table1_stg):
        graph = build_state_graph(table1_stg)
        expected = TABLE1_VERDICTS[_table_name(table1_stg)]
        assert graph.has_usc() == expected["usc"]
        assert graph.has_csc() == expected["csc"]

    def test_csc_resolved_vme(self, vme_csc):
        graph = build_state_graph(vme_csc)
        assert graph.has_usc()
        assert graph.has_csc()

    def test_usc_implies_csc(self, table1_stg):
        graph = build_state_graph(table1_stg)
        if graph.has_usc():
            assert graph.has_csc()


class TestConflictReporting:
    def test_first_only_short_circuits(self, vme):
        graph = build_state_graph(vme)
        assert len(graph.usc_conflicts(first_only=True)) == 1

    def test_usc_conflicts_superset_of_csc(self, vme):
        graph = build_state_graph(vme)
        usc_pairs = {(c.state_a, c.state_b) for c in graph.usc_conflicts()}
        csc_pairs = {(c.state_a, c.state_b) for c in graph.csc_conflicts()}
        assert csc_pairs <= usc_pairs

    def test_conflict_describe(self, vme):
        graph = build_state_graph(vme)
        text = graph.csc_conflicts()[0].describe(vme)
        assert "code" in text and "Out" in text

    def test_codes_are_binary(self, table1_stg):
        graph = build_state_graph(table1_stg)
        for state in range(graph.num_states):
            assert set(graph.code(state)) <= {0, 1}


def _table_name(stg) -> str:
    """Map a benchmark STG back to its Table 1 name via its net name."""
    from repro.models import TABLE1_BENCHMARKS

    for name, ctor in TABLE1_BENCHMARKS.items():
        if ctor().net.name == stg.net.name:
            return name
    raise AssertionError(f"unknown benchmark {stg.net.name}")
