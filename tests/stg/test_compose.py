"""Tests for STG parallel composition, hiding and renaming."""

import pytest

from repro.exceptions import ReproError
from repro.models._build import seq
from repro.models.classic import c_element
from repro.stg.compose import (
    CompositionError,
    hide,
    internalise,
    parallel_compose,
    rename_signals,
)
from repro.stg.consistency import is_consistent
from repro.stg.stategraph import build_state_graph
from repro.stg.stg import STG
from repro.stg.transform import contract_all_dummies


def handshake(req: str, ack: str, active: bool, name: str) -> STG:
    """A four-phase handshake component.

    ``active=True`` drives ``req`` and observes ``ack`` (the master side);
    passive components mirror the roles.
    """
    if active:
        stg = STG(name, inputs=[ack], outputs=[req])
    else:
        stg = STG(name, inputs=[req], outputs=[ack])
    seq(stg, f"{req}+", f"{ack}+", f"{req}-", f"{ack}-")
    seq(stg, f"{ack}-", f"{req}+", marked=True)
    return stg


class TestParallelCompose:
    def test_master_slave_handshake(self):
        master = handshake("r", "a", active=True, name="master")
        slave = handshake("r", "a", active=False, name="slave")
        system = parallel_compose(master, slave)
        # both signals are driven by exactly one side
        assert set(system.outputs) == {"r", "a"}
        assert system.inputs == []
        assert is_consistent(system)
        graph = build_state_graph(system)
        # a single synchronised four-phase cycle
        assert graph.num_states == 4
        assert not graph.consistency.graph.deadlocks()

    def test_disjoint_components_product(self):
        left = handshake("r1", "a1", active=True, name="L")
        right = handshake("r2", "a2", active=True, name="R")
        system = parallel_compose(left, right)
        graph = build_state_graph(system)
        assert graph.num_states == 4 * 4
        assert is_consistent(system)

    def test_output_output_clash(self):
        a = handshake("r", "a", active=True, name="A")
        b = handshake("r", "x", active=True, name="B")
        with pytest.raises(CompositionError):
            parallel_compose(a, b)

    def test_shared_internal_rejected(self):
        a = STG("A", internal=["x"])
        seq(a, "x+", "x-")
        seq(a, "x-", "x+", marked=True)
        b = STG("B", inputs=["x"])
        seq(b, "x+", "x-")
        seq(b, "x-", "x+", marked=True)
        with pytest.raises(CompositionError):
            parallel_compose(a, b)

    def test_env_closure_of_c_element(self):
        """Compose the C-element spec with an explicit environment: inputs
        become driven, the closed system stays consistent and clean."""
        spec = c_element()
        env = STG("env", inputs=["c"], outputs=["a", "b"])
        seq(env, "a+", "c+", "a-", "c-")
        seq(env, "b+", "c+")
        seq(env, "c+", "b-")
        seq(env, "b-", "c-")
        seq(env, "c-", "a+", marked=True)
        seq(env, "c-", "b+", marked=True)
        closed = parallel_compose(spec, env)
        assert set(closed.outputs) == {"a", "b", "c"}
        assert is_consistent(closed)
        graph = build_state_graph(closed)
        assert graph.has_usc()

    def test_multi_instance_synchronisation(self):
        """Each a+ of one side pairs with each a+ of the other."""
        a = STG("A", outputs=["x"])
        seq(a, "x+", "x-")
        seq(a, "x-", "x+/2")
        seq(a, "x+/2", "x-/2")
        seq(a, "x-/2", "x+", marked=True)
        b = STG("B", inputs=["x"])
        seq(b, "x+", "x-")
        seq(b, "x-", "x+", marked=True)
        system = parallel_compose(a, b)
        # 2 plus-instances x 1, and 2 minus-instances x 1
        plus = system.edge_transitions("x", +1)
        minus = system.edge_transitions("x", -1)
        assert len(plus) == 2 and len(minus) == 2
        assert is_consistent(system)


class TestHide:
    def test_hidden_signals_become_dummies(self):
        master = handshake("r", "a", active=True, name="master")
        slave = handshake("r", "a", active=False, name="slave")
        system = parallel_compose(master, slave)
        quiet = hide(system, ["a"])
        assert "a" not in quiet.signals
        assert quiet.has_dummies()
        assert is_consistent(quiet)

    def test_hide_then_contract(self):
        master = handshake("r", "a", active=True, name="master")
        slave = handshake("r", "a", active=False, name="slave")
        system = parallel_compose(master, slave)
        quiet = contract_all_dummies(hide(system, ["a"]))
        # the synchronised dummies have 2x2 presets/postsets, which secure
        # contraction must refuse — but the checkers handle them anyway
        graph = build_state_graph(quiet)
        # only the r+/r- alternation remains observable
        assert set(graph.codes) == {(0,), (1,)}
        assert is_consistent(quiet)

    def test_hide_then_contract_sequential(self):
        """With a plain (uncomposed) component, hiding + contraction does
        remove all silent transitions."""
        stg = handshake("r", "a", active=True, name="single")
        quiet = contract_all_dummies(hide(stg, ["a"]))
        assert not quiet.has_dummies()
        graph = build_state_graph(quiet)
        assert set(graph.codes) == {(0,), (1,)}

    def test_unknown_signal_rejected(self, vme):
        with pytest.raises(ReproError):
            hide(vme, ["nope"])


class TestRenameAndInternalise:
    def test_rename_rewires_composition(self):
        """Chain two components on a shared channel signal: both observe
        'mid' as input, so the composition keeps it as an (environment)
        input while synchronising on its edges."""
        a = handshake("r", "mid", active=True, name="A")
        b = handshake("mid", "done", active=False, name="B")
        system = parallel_compose(a, b)
        assert "mid" in system.inputs
        assert set(system.outputs) == {"r", "done"}
        assert is_consistent(system)

    def test_rename_basic(self, vme):
        renamed = rename_signals(vme, {"dsr": "req"})
        assert "req" in renamed.inputs
        assert "dsr" not in renamed.signals
        assert is_consistent(renamed)
        graph_a = build_state_graph(vme)
        graph_b = build_state_graph(renamed)
        assert graph_a.num_states == graph_b.num_states

    def test_rename_collision_rejected(self, vme):
        with pytest.raises(ReproError):
            rename_signals(vme, {"dsr": "lds"})

    def test_internalise(self, vme):
        result = internalise(vme, ["d"])
        assert "d" in result.internal
        assert "d" not in result.outputs
        # CSC is unaffected (internal counts as output-like)
        from repro.core import check_csc

        assert check_csc(result).holds == check_csc(vme).holds

    def test_internalise_non_output_rejected(self, vme):
        with pytest.raises(ReproError):
            internalise(vme, ["dsr"])
