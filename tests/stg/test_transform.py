"""Tests for dummy contraction and place simplification."""

import pytest

from repro.core import check_csc, check_usc
from repro.stg.consistency import is_consistent
from repro.stg.stategraph import build_state_graph
from repro.stg.stg import STG, SignalEdge
from repro.stg.transform import (
    ContractionError,
    contract_all_dummies,
    contract_dummy,
    remove_duplicate_places,
)


def dummy_chain_stg():
    """a+ -> eps -> b+ -> a- -> eps2 -> b- cycle with two dummies."""
    stg = STG("dummies", inputs=["a"], outputs=["b"])
    nodes = ["a+", "eps", "b+", "a-", "eps2", "b-"]
    labels = {
        "a+": SignalEdge("a", 1),
        "b+": SignalEdge("b", 1),
        "a-": SignalEdge("a", -1),
        "b-": SignalEdge("b", -1),
        "eps": None,
        "eps2": None,
    }
    for node in nodes:
        stg.add_transition(node, labels[node])
    for i, node in enumerate(nodes):
        nxt = nodes[(i + 1) % len(nodes)]
        place = f"p{i}"
        stg.add_place(place, tokens=1 if i == len(nodes) - 1 else 0)
        stg.add_arc(node, place)
        stg.add_arc(place, nxt)
    return stg


class TestContractDummy:
    def test_removes_transition_and_merges_places(self):
        stg = dummy_chain_stg()
        contracted = contract_dummy(stg, "eps")
        assert not contracted.net.has_transition("eps")
        assert contracted.net.num_transitions == stg.net.num_transitions - 1
        assert contracted.net.num_places == stg.net.num_places - 1

    def test_preserves_language_and_csc(self):
        stg = dummy_chain_stg()
        contracted = contract_all_dummies(stg)
        assert not contracted.has_dummies()
        assert is_consistent(contracted)
        # behaviour over observable signals is unchanged: same codes set
        sg_before = build_state_graph(stg)
        sg_after = build_state_graph(contracted)
        assert set(sg_before.codes) == set(sg_after.codes)
        # CSC (with weak excitation on the dummy version) is preserved;
        # marking-based USC is NOT comparable across contraction — the
        # silent intermediate markings trivially share codes, which is why
        # the paper's main text excludes dummies from the USC discussion
        assert check_csc(contracted).holds == check_csc(stg).holds

    def test_weak_excitation_sees_through_dummies(self):
        from repro.stg.nextstate import enabled_outputs, silent_closure

        stg = dummy_chain_stg()
        # marking with a token before 'eps' (i.e. after a+ fired)
        m = stg.net.fire_by_name(stg.net.initial_marking, "a+")
        assert enabled_outputs(stg, m) == frozenset()
        assert enabled_outputs(stg, m, weak=True) == frozenset({"b"})
        assert len(silent_closure(stg, m)) == 2

    def test_non_dummy_rejected(self):
        stg = dummy_chain_stg()
        with pytest.raises(ContractionError):
            contract_dummy(stg, "a+")

    def test_self_loop_rejected(self):
        stg = STG("loop", inputs=["a"])
        stg.add_place("p", tokens=1)
        stg.add_transition("eps", None)
        stg.add_arc("p", "eps")
        stg.add_arc("eps", "p")
        with pytest.raises(ContractionError):
            contract_dummy(stg, "eps")

    def test_shared_place_rejected(self):
        """A preset place with another consumer cannot be merged away."""
        stg = STG("shared", inputs=["a"])
        stg.add_place("p", tokens=1)
        stg.add_place("q")
        stg.add_transition("eps", None)
        stg.add_transition("a+", SignalEdge("a", 1))
        stg.add_arc("p", "eps")
        stg.add_arc("p", "a+")  # second consumer of p
        stg.add_arc("eps", "q")
        stg.add_arc("a+", "q")
        with pytest.raises(ContractionError):
            contract_dummy(stg, "eps")

    def test_nonsecure_mxn_rejected(self):
        stg = STG("mxn", inputs=["a"])
        for p in ("p1", "p2", "q1", "q2"):
            stg.add_place(p, tokens=1 if p.startswith("p") else 0)
        stg.add_transition("eps", None)
        for p in ("p1", "p2"):
            stg.add_arc(p, "eps")
        for q in ("q1", "q2"):
            stg.add_arc("eps", q)
        with pytest.raises(ContractionError):
            contract_dummy(stg, "eps")

    def test_fork_dummy_contracts(self):
        """|•t| = 1, |t•| = 2: merging fans the token out."""
        stg = STG("fork", outputs=["x", "y"])
        stg.add_place("start", tokens=1)
        stg.add_transition("eps", None)
        stg.add_arc("start", "eps")
        for branch in ("x", "y"):
            stg.add_place(f"ready_{branch}")
            stg.add_arc("eps", f"ready_{branch}")
            stg.add_transition(f"{branch}+", SignalEdge(branch, 1))
            stg.add_arc(f"ready_{branch}", f"{branch}+")
            stg.add_place(f"done_{branch}")
            stg.add_arc(f"{branch}+", f"done_{branch}")
        contracted = contract_dummy(stg, "eps")
        sg = build_state_graph(contracted)
        # both branches still fire concurrently
        assert sg.num_states == 4


class TestContractAll:
    def test_keeps_resistant_dummies(self):
        stg = STG("mxn", inputs=["a"])
        for p in ("p1", "p2", "q1", "q2"):
            stg.add_place(p, tokens=1 if p.startswith("p") else 0)
        stg.add_transition("eps", None)
        for p in ("p1", "p2"):
            stg.add_arc(p, "eps")
        for q in ("q1", "q2"):
            stg.add_arc("eps", q)
        result = contract_all_dummies(stg)
        assert result.has_dummies()

    def test_idempotent_on_dummy_free(self, vme):
        assert contract_all_dummies(vme) is vme


class TestRemoveDuplicates:
    def test_removes_exact_duplicates(self):
        stg = STG("dup", inputs=["a"])
        stg.add_transition("a+", SignalEdge("a", 1))
        stg.add_transition("a-", SignalEdge("a", -1))
        for name in ("p", "p_copy"):
            stg.add_place(name, tokens=1)
            stg.add_arc(name, "a+")
            stg.add_arc("a-", name)
        stg.add_place("mid")
        stg.add_arc("a+", "mid")
        stg.add_arc("mid", "a-")
        cleaned = remove_duplicate_places(stg)
        assert cleaned.net.num_places == 2
        assert is_consistent(cleaned)

    def test_noop_without_duplicates(self, vme):
        assert remove_duplicate_places(vme) is vme
