"""The docs drift checker: rule sync, link resolution, reachability."""

import importlib.util
from pathlib import Path

import pytest

_PATH = Path(__file__).resolve().parents[1] / "tools" / "check_docs.py"
_spec = importlib.util.spec_from_file_location("check_docs", _PATH)
checker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(checker)


def test_repo_docs_are_clean(capsys):
    assert checker.main() == 0
    assert "pages checked" in capsys.readouterr().out


class TestAnchors:
    def test_github_slugs(self):
        text = "# Hello World\n## `GET /v1/jobs/{id}`\n## Drain semantics\n"
        assert checker.heading_anchors(text) == {
            "hello-world",
            "get-v1jobsid",
            "drain-semantics",
        }

    def test_duplicate_headings_numbered(self):
        assert checker.heading_anchors("## Same\n## Same\n") == {
            "same",
            "same-1",
        }

    def test_fenced_code_ignored(self):
        text = "```\n# not a heading\n[x](nowhere.md)\n```\n# Real\n"
        assert checker.heading_anchors(text) == {"real"}


@pytest.fixture
def fake_docs(tmp_path, monkeypatch):
    docs = tmp_path / "docs"
    docs.mkdir()
    monkeypatch.setattr(checker, "ROOT", tmp_path)
    monkeypatch.setattr(checker, "DOCS", docs)
    monkeypatch.setattr(checker, "INDEX", docs / "index.md")
    return docs


class TestLinkProblems:
    def test_broken_link_flagged(self, fake_docs):
        page = fake_docs / "index.md"
        page.write_text("[gone](missing.md) and [ok](https://example.com)\n")
        (problem,) = checker.link_problems([page])
        assert "broken link 'missing.md'" in problem

    def test_bad_anchor_flagged(self, fake_docs):
        (fake_docs / "other.md").write_text("# Present\n")
        page = fake_docs / "index.md"
        page.write_text("[good](other.md#present) [bad](other.md#absent)\n")
        (problem,) = checker.link_problems([page])
        assert "'absent'" in problem

    def test_clean_tree_passes(self, fake_docs):
        (fake_docs / "other.md").write_text("# Present\n")
        page = fake_docs / "index.md"
        page.write_text("[good](other.md#present)\n")
        assert checker.link_problems([page]) == []


class TestReachability:
    def test_orphan_flagged(self, fake_docs):
        (fake_docs / "index.md").write_text("[a](linked.md)\n")
        (fake_docs / "linked.md").write_text("# Linked\n")
        (fake_docs / "orphan.md").write_text("# Orphan\n")
        (problem,) = checker.reachability_problems()
        assert "orphan.md" in problem

    def test_transitive_links_count(self, fake_docs):
        (fake_docs / "index.md").write_text("[a](mid.md)\n")
        (fake_docs / "mid.md").write_text("[b](leaf.md)\n")
        (fake_docs / "leaf.md").write_text("# Leaf\n")
        assert checker.reachability_problems() == []

    def test_missing_index_flagged(self, fake_docs):
        (problem,) = checker.reachability_problems()
        assert "index.md is missing" in problem
