"""Tests for the ILP modelling layer."""

import pytest

from repro.ilp.model import Constraint, LinearExpr, Problem


class TestLinearExpr:
    def test_term_and_constant(self):
        e = LinearExpr.term(0, 2) + LinearExpr.constant(3)
        assert e.evaluate([1]) == 5
        assert e.evaluate([0]) == 3

    def test_addition_merges(self):
        e = LinearExpr.term(0) + LinearExpr.term(0) + LinearExpr.term(1, -1)
        assert e.coeffs == {0: 2, 1: -1}

    def test_zero_coefficients_dropped(self):
        e = LinearExpr.term(0) - LinearExpr.term(0)
        assert e.coeffs == {}

    def test_scale(self):
        e = (LinearExpr.term(0, 2) + LinearExpr.constant(1)).scale(-3)
        assert e.coeffs == {0: -6}
        assert e.const == -3

    def test_repr_stable(self):
        e = LinearExpr({1: 2, 0: -1}, 5)
        assert repr(e) == "-1*x0 + 2*x1 + 5"
        assert repr(LinearExpr()) == "0"


class TestConstraint:
    def test_senses(self):
        x = LinearExpr.term(0)
        assert Constraint.build(x, "<=", 1).satisfied([1])
        assert not Constraint.build(x, ">=", 1).satisfied([0])
        assert Constraint.build(x, "==", 1).satisfied([1])

    def test_build_folds_rhs(self):
        c = Constraint.build(LinearExpr.term(0), "<=", 5)
        assert c.expr.const == -5

    def test_bad_sense(self):
        with pytest.raises(ValueError):
            Constraint(LinearExpr(), "<")


class TestProblem:
    def test_add_validates_vars(self):
        p = Problem(num_vars=2)
        with pytest.raises(ValueError):
            p.add(Constraint.build(LinearExpr.term(5), "<=", 1))

    def test_fix_zero(self):
        p = Problem(num_vars=1)
        p.fix_zero(0)
        assert p.check([0])
        assert not p.check([1])

    def test_check_length(self):
        p = Problem(num_vars=2)
        with pytest.raises(ValueError):
            p.check([0])

    def test_names(self):
        p = Problem(num_vars=2, names=["alpha"])
        assert p.name_of(0) == "alpha"
        assert p.name_of(1) == "x1"
