"""Tests for the generic 0-1 branch-and-bound solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverLimitError
from repro.ilp.model import Constraint, LinearExpr, Problem
from repro.ilp.solver import BranchAndBoundSolver, SolverOptions


def knapsack_problem():
    """x0 + 2 x1 + 3 x2 == 3."""
    p = Problem(num_vars=3)
    expr = (
        LinearExpr.term(0, 1) + LinearExpr.term(1, 2) + LinearExpr.term(2, 3)
    )
    p.add(Constraint.build(expr, "==", 3))
    return p


class TestSolve:
    def test_finds_all_solutions(self):
        solver = BranchAndBoundSolver(knapsack_problem())
        solutions = {tuple(s) for s in solver.solutions()}
        assert solutions == {(1, 1, 0), (0, 0, 1)}

    def test_first_solution(self):
        solution = BranchAndBoundSolver(knapsack_problem()).solve()
        assert solution in ([1, 1, 0], [0, 0, 1])

    def test_infeasible(self):
        p = Problem(num_vars=2)
        p.add(Constraint.build(LinearExpr.term(0) + LinearExpr.term(1), ">=", 3))
        assert BranchAndBoundSolver(p).solve() is None

    def test_unconstrained_enumerates_all(self):
        p = Problem(num_vars=3)
        assert len(list(BranchAndBoundSolver(p).solutions())) == 8

    def test_node_budget(self):
        p = Problem(num_vars=20)
        solver = BranchAndBoundSolver(p, SolverOptions(node_budget=10))
        with pytest.raises(SolverLimitError):
            list(solver.solutions())

    def test_custom_variable_order(self):
        p = knapsack_problem()
        solver = BranchAndBoundSolver(p, SolverOptions(variable_order=[2, 1, 0]))
        solutions = {tuple(s) for s in solver.solutions()}
        assert solutions == {(1, 1, 0), (0, 0, 1)}

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            BranchAndBoundSolver(
                Problem(num_vars=2), SolverOptions(variable_order=[0, 0])
            )

    def test_pruning_reduces_nodes(self):
        p = Problem(num_vars=12)
        expr = LinearExpr()
        for i in range(12):
            expr = expr + LinearExpr.term(i)
        p.add(Constraint.build(expr, ">=", 12))  # all ones forced
        solver = BranchAndBoundSolver(p)
        assert solver.solve() == [1] * 12
        # with the >= bound, every 0-branch is pruned immediately
        assert solver.stats.nodes <= 2 * 12 + 2


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.lists(st.integers(-3, 3), min_size=4, max_size=4),
                st.sampled_from(["<=", ">=", "=="]),
                st.integers(-4, 4),
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_matches_enumeration(self, raw_constraints):
        p = Problem(num_vars=4)
        for coeffs, sense, rhs in raw_constraints:
            expr = LinearExpr({i: c for i, c in enumerate(coeffs)})
            p.add(Constraint.build(expr, sense, rhs))
        solver_solutions = {tuple(s) for s in BranchAndBoundSolver(p).solutions()}
        brute = {
            bits
            for bits in itertools.product((0, 1), repeat=4)
            if p.check(list(bits))
        }
        assert solver_solutions == brute
