"""Tests for job specs, structured results and the engine registry."""

import pytest

from repro.engine.jobs import (
    ENGINES,
    VERDICT_ERROR,
    VERDICT_LIMIT,
    VerificationJob,
    engine_names,
    execute_engine,
    register_engine,
)
from repro.exceptions import ReproError
from repro.models import TABLE1_BENCHMARKS, vme_bus
from tests.conftest import TABLE1_VERDICTS


class TestJobSpec:
    def test_job_id_is_stable_and_content_addressed(self):
        a = VerificationJob(stg=vme_bus(), property="csc")
        b = VerificationJob(stg=vme_bus(), property="csc")
        assert a.job_id == b.job_id
        assert a.stg_hash == b.stg_hash
        assert a.job_id.startswith("vme-read:csc@")

    def test_cache_fields_exclude_engines_and_limits(self):
        a = VerificationJob(stg=vme_bus(), property="csc", engines=("ilp",))
        b = VerificationJob(
            stg=vme_bus(), property="csc", engines=("sat", "sg"), node_budget=7
        )
        assert a.cache_fields() == b.cache_fields()

    def test_unknown_property_rejected(self):
        with pytest.raises(ReproError, match="unknown property"):
            VerificationJob(stg=vme_bus(), property="liveness")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ReproError, match="unknown engine"):
            VerificationJob(stg=vme_bus(), property="csc", engines=("cplex",))

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ReproError, match="at least one engine"):
            VerificationJob(stg=vme_bus(), property="csc", engines=())


class TestBuiltinEngines:
    @pytest.mark.parametrize("engine", sorted(["ilp", "sat", "bdd", "sg"]))
    @pytest.mark.parametrize("name", ["RING", "LAZYRING", "DUP-MOD-A"])
    @pytest.mark.parametrize("prop", ["usc", "csc"])
    def test_every_engine_matches_pinned_verdicts(self, engine, name, prop):
        job = VerificationJob(stg=TABLE1_BENCHMARKS[name](), property=prop)
        result = execute_engine(job, engine)
        assert result.sound, result.error
        assert result.holds == TABLE1_VERDICTS[name][prop]
        assert result.engine == engine
        assert result.elapsed >= 0

    def test_violated_results_carry_a_witness(self):
        job = VerificationJob(stg=vme_bus(), property="csc")
        result = execute_engine(job, "ilp")
        assert result.holds is False
        assert result.witness and "CSC conflict" in result.witness

    def test_normalcy_engines_agree(self):
        stg = TABLE1_BENCHMARKS["RING"]()
        job = VerificationJob(stg=stg, property="normalcy")
        ilp = execute_engine(job, "ilp")
        sg = execute_engine(job, "sg")
        assert ilp.sound and sg.sound
        assert ilp.holds == sg.holds

    @pytest.mark.parametrize("engine", ["sat", "bdd"])
    def test_normalcy_unsupported_engines_report_errors(self, engine):
        job = VerificationJob(stg=vme_bus(), property="normalcy")
        result = execute_engine(job, engine)
        assert result.verdict == VERDICT_ERROR
        assert "does not support" in result.error

    def test_node_budget_exhaustion_is_a_limit_verdict(self):
        job = VerificationJob(stg=vme_bus(), property="csc", node_budget=1)
        result = execute_engine(job, "ilp")
        assert result.verdict == VERDICT_LIMIT
        assert not result.sound
        assert "budget" in result.error

    def test_unknown_engine_at_execute_time(self):
        job = VerificationJob(stg=vme_bus(), property="csc")
        with pytest.raises(ReproError, match="unknown engine"):
            execute_engine(job, "nope")


class TestRegistry:
    def test_register_engine(self):
        def oracle(job):
            return True, None, {"custom": 1}

        register_engine("oracle-test", oracle)
        try:
            job = VerificationJob(
                stg=vme_bus(), property="csc", engines=("oracle-test",)
            )
            result = execute_engine(job, "oracle-test")
            assert result.holds is True
            assert result.stats == {"custom": 1}
            assert "oracle-test" in engine_names()
        finally:
            ENGINES.pop("oracle-test", None)

    def test_engine_exceptions_become_error_verdicts(self):
        def broken(job):
            raise ValueError("internal bug")

        register_engine("broken-test", broken)
        try:
            job = VerificationJob(
                stg=vme_bus(), property="csc", engines=("broken-test",)
            )
            result = execute_engine(job, "broken-test")
            assert result.verdict == VERDICT_ERROR
            assert "internal bug" in result.error
        finally:
            ENGINES.pop("broken-test", None)
