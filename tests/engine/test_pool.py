"""Robustness tests for the worker pool: timeouts, crashes, retries.

The runners below are registered at module import so that forked workers
(which inherit this process's memory) can resolve them by name.
"""

import os
import time

import pytest

from repro.engine import events as ev
from repro.engine.pool import (
    RUNNERS,
    STATUS_CRASHED,
    STATUS_OK,
    STATUS_RAISED,
    STATUS_TIMEOUT,
    Task,
    WorkerPool,
    fork_available,
    register_runner,
)
from repro.exceptions import ReproError

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _echo(payload):
    return payload * 2


def _sleepy(payload):
    time.sleep(payload)
    return "woke"


def _die(payload):
    os._exit(13)


def _flaky(marker_path):
    """Crash on the first attempt, succeed once the marker file exists."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("seen")
        os._exit(1)
    return "recovered"


def _raiser(payload):
    raise ValueError(f"bad payload {payload!r}")


register_runner("test-echo", _echo)
register_runner("test-sleepy", _sleepy)
register_runner("test-die", _die)
register_runner("test-flaky", _flaky)
register_runner("test-raiser", _raiser)


def drain(pool):
    return list(pool.outcomes())


class TestInlineMode:
    def test_runs_tasks_in_order(self):
        with WorkerPool(max_workers=0) as pool:
            for i in range(3):
                pool.submit(Task(f"t{i}", f"g{i}", "test-echo", i))
            outcomes = drain(pool)
        assert [o.value for o in outcomes] == [0, 2, 4]
        assert all(o.status == STATUS_OK for o in outcomes)

    def test_exceptions_become_raised_outcomes(self):
        with WorkerPool(max_workers=0) as pool:
            pool.submit(Task("t", "g", "test-raiser", "x"))
            (outcome,) = drain(pool)
        assert outcome.status == STATUS_RAISED
        assert "bad payload" in outcome.error

    def test_explicit_inline_is_not_degradation(self):
        events = ev.EventLog()
        with WorkerPool(max_workers=0, events=events):
            pass
        assert events.of_kind(ev.POOL_DEGRADED) == []

    def test_unknown_runner_rejected_at_submit(self):
        with WorkerPool(max_workers=0) as pool:
            with pytest.raises(ReproError, match="unknown runner"):
                pool.submit(Task("t", "g", "no-such-runner", None))


@needs_fork
class TestForkMode:
    def test_results_cross_the_process_boundary(self):
        with WorkerPool(max_workers=2) as pool:
            for i in range(5):
                pool.submit(Task(f"t{i}", f"g{i}", "test-echo", i))
            outcomes = drain(pool)
        assert sorted(o.value for o in outcomes) == [0, 2, 4, 6, 8]

    def test_worker_timeout(self):
        events = ev.EventLog()
        with WorkerPool(max_workers=1, events=events) as pool:
            pool.submit(Task("slow", "g", "test-sleepy", 30.0, timeout=0.2))
            (outcome,) = drain(pool)
        assert outcome.status == STATUS_TIMEOUT
        assert outcome.attempts == 1  # timeouts are never retried
        assert len(events.of_kind(ev.TASK_TIMEOUT)) == 1
        assert events.stats.timeouts == 1

    def test_worker_crash_exhausts_bounded_retries(self):
        events = ev.EventLog()
        with WorkerPool(max_workers=1, max_retries=2, events=events) as pool:
            pool.submit(Task("boom", "g", "test-die", None))
            (outcome,) = drain(pool)
        assert outcome.status == STATUS_CRASHED
        assert outcome.attempts == 3  # initial try + 2 retries
        assert "exit 13" in outcome.error
        assert len(events.of_kind(ev.TASK_RETRY)) == 2
        assert len(events.of_kind(ev.TASK_CRASHED)) == 1

    def test_worker_crash_then_recovery(self, tmp_path):
        marker = str(tmp_path / "flaky.marker")
        events = ev.EventLog()
        with WorkerPool(max_workers=1, max_retries=1, events=events) as pool:
            pool.submit(Task("flaky", "g", "test-flaky", marker))
            (outcome,) = drain(pool)
        assert outcome.status == STATUS_OK
        assert outcome.value == "recovered"
        assert outcome.attempts == 2
        assert events.stats.retries == 1

    def test_cancel_group_drops_queued_and_running(self):
        events = ev.EventLog()
        with WorkerPool(max_workers=1, events=events) as pool:
            pool.submit(Task("slow1", "slow", "test-sleepy", 30.0))
            pool.submit(Task("slow2", "slow", "test-sleepy", 30.0))
            pool.submit(Task("quick", "other", "test-echo", 21))
            # let the first slow task actually start before cancelling
            deadline = time.monotonic() + 5.0
            while not pool._running and time.monotonic() < deadline:
                pool._start_ready()
                time.sleep(0.01)
            cancelled = pool.cancel_group("slow")
            outcomes = drain(pool)
        assert cancelled == 2
        assert [o.task_id for o in outcomes] == ["quick"]
        assert outcomes[0].value == 42
        assert events.stats.cancelled == 2

    def test_default_timeout_applies_when_task_has_none(self):
        with WorkerPool(max_workers=1, default_timeout=0.2) as pool:
            pool.submit(Task("slow", "g", "test-sleepy", 30.0))
            (outcome,) = drain(pool)
        assert outcome.status == STATUS_TIMEOUT

    def test_shutdown_terminates_running_workers(self):
        pool = WorkerPool(max_workers=1)
        pool.submit(Task("slow", "g", "test-sleepy", 30.0))
        pool._start_ready()
        (running,) = pool._running
        pool.shutdown()
        assert not running.process.is_alive()
        assert not pool._pending and not pool._running
