"""Tests for the batch driver, its CLI subcommand and the pooled Table 1."""

import pytest

from repro.cli import main
from repro.engine.batch import (
    build_jobs,
    default_targets,
    format_batch_report,
    resolve_target,
    run_batch,
)
from repro.exceptions import ReproError
from repro.models import vme_bus
from repro.stg.parser import write_stg
from tests.conftest import TABLE1_VERDICTS

SMALL = ["RING", "LAZYRING", "DUP-MOD-A"]


class TestJobBuilding:
    def test_registered_names_and_files(self, tmp_path):
        path = tmp_path / "vme.g"
        path.write_text(write_stg(vme_bus()))
        jobs = build_jobs(["RING", str(path)], properties=("usc", "csc"))
        assert len(jobs) == 4
        assert {job.name for job in jobs} == {"RING", "vme-read"}

    def test_unknown_target(self):
        with pytest.raises(ReproError, match="unknown target"):
            resolve_target("NO-SUCH-MODEL")

    def test_missing_file(self):
        with pytest.raises(ReproError, match="cannot read"):
            resolve_target("/nonexistent/x.g")

    def test_default_targets_cover_table1(self):
        targets = default_targets()
        assert set(TABLE1_VERDICTS) <= set(targets)


class TestRunBatch:
    def test_agrees_with_pinned_verdicts_and_warms_the_cache(self, tmp_path):
        jobs = build_jobs(SMALL, properties=("usc", "csc"), engines=("ilp", "sat"))
        cold = run_batch(jobs, max_workers=2, cache_dir=tmp_path)
        assert cold.all_sound
        assert cold.cache_hits == 0
        for result in cold.results:
            assert result.holds == TABLE1_VERDICTS[result.name][result.property]

        warm = run_batch(jobs, max_workers=2, cache_dir=tmp_path)
        assert warm.all_sound
        assert warm.cache_hits == len(jobs)
        assert warm.stats.cache_hits == len(jobs)
        for a, b in zip(cold.results, warm.results):
            assert a.verdict == b.verdict

    def test_no_cache_mode(self):
        jobs = build_jobs(["RING"], properties=("csc",))
        report = run_batch(jobs, max_workers=0, cache_dir=None)
        assert report.all_sound
        assert report.stats.cache_hits == 0 and report.stats.cache_misses == 0

    def test_report_formatting(self, tmp_path):
        jobs = build_jobs(["RING"], properties=("csc",))
        report = run_batch(jobs, max_workers=0, cache_dir=tmp_path)
        text = format_batch_report(report)
        assert "RING" in text
        assert "verdict" in text
        assert "cache: 0 hits, 1 misses" in text
        assert "total wall time" in text


class TestBatchCLI:
    def test_cold_then_warm(self, tmp_path, capsys):
        argv = [
            "batch",
            *SMALL,
            "--jobs",
            "2",
            "--portfolio",
            "ilp,sat",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        cold_out = capsys.readouterr().out
        assert "cache: 0 hits" in cold_out

        assert main(argv) == 0
        warm_out = capsys.readouterr().out
        assert f"cache: {len(SMALL)} hits, 0 misses" in warm_out
        # the source column distinguishes cached verdicts from fresh ones
        assert warm_out.count("| cache") >= len(SMALL)
        assert "| fresh" not in warm_out

    def test_violations_still_exit_zero(self, tmp_path, capsys):
        # batch reports verdicts, it does not gate on them
        assert (
            main(["batch", "LAZYRING", "--no-cache", "--jobs", "0"]) == 0
        )
        assert "violated" in capsys.readouterr().out

    def test_unknown_target_exits_nonzero(self, capsys):
        assert main(["batch", "NO-SUCH-MODEL", "--no-cache"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_bad_engine_exits_nonzero(self, capsys):
        assert main(["batch", "RING", "--portfolio", "cplex"]) == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_properties_flag(self, tmp_path, capsys):
        assert (
            main(
                [
                    "batch",
                    "RING",
                    "-p",
                    "usc",
                    "-p",
                    "csc",
                    "--no-cache",
                    "--jobs",
                    "0",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "usc" in out and "csc" in out


class TestTable1ThroughThePool:
    def test_pooled_rows_match_inline_rows(self):
        from repro.bench.table1 import table1_rows

        names = ["RING", "LAZYRING"]
        inline = table1_rows(names, run_baseline=False, jobs=1)
        pooled = table1_rows(names, run_baseline=False, jobs=2)
        assert [r.name for r in pooled] == [r.name for r in inline]
        for a, b in zip(inline, pooled):
            assert (a.usc_holds, a.csc_holds) == (b.usc_holds, b.csc_holds)
            assert (a.conditions, a.events, a.cutoffs) == (
                b.conditions,
                b.events,
                b.cutoffs,
            )


class TestBuildJobsReporting:
    """Bad targets become structured error rows, not batch aborts."""

    def _errors_for(self, targets, **kwargs):
        from repro.engine.batch import build_jobs_reporting

        return build_jobs_reporting(targets, **kwargs)

    def test_good_targets_are_unchanged(self):
        jobs, errors = self._errors_for(SMALL, properties=("usc", "csc"))
        assert errors == []
        assert [job.job_id for job in jobs] == [
            job.job_id for job in build_jobs(SMALL, properties=("usc", "csc"))
        ]

    def test_missing_file_yields_one_error_per_property(self):
        jobs, errors = self._errors_for(
            ["/nonexistent/x.g"], properties=("usc", "csc")
        )
        assert jobs == []
        assert [e.property for e in errors] == ["usc", "csc"]
        for row in errors:
            assert row.verdict == "error"
            assert row.sound is False
            assert row.name == "/nonexistent/x.g"
            assert "cannot read" in row.error
            assert row.job_id.endswith("@invalid")

    def test_undecodable_file(self, tmp_path):
        path = tmp_path / "binary.g"
        path.write_bytes(b"\xff\xfe\x00garbage\x00")
        jobs, errors = self._errors_for([str(path)])
        assert jobs == []
        assert len(errors) == 1
        assert "cannot decode" in errors[0].error or "cannot read" in errors[0].error

    def test_unparsable_file(self, tmp_path):
        path = tmp_path / "broken.g"
        path.write_text("this is not an stg\n")
        jobs, errors = self._errors_for([str(path)])
        assert jobs == []
        assert "cannot parse" in errors[0].error
        assert str(path) in errors[0].error

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "truncated.g"
        path.write_text(write_stg(vme_bus()).rsplit(".end", 1)[0])
        jobs, errors = self._errors_for([str(path)])
        assert jobs == []
        assert "missing .end" in errors[0].error

    def test_unknown_model_name(self):
        jobs, errors = self._errors_for(["NO-SUCH-MODEL"])
        assert jobs == []
        assert "unknown target" in errors[0].error

    def test_mixed_batch_keeps_the_good_targets(self, tmp_path):
        broken = tmp_path / "broken.g"
        broken.write_text("garbage\n")
        jobs, errors = self._errors_for(["RING", str(broken), "LAZYRING"])
        assert [job.name for job in jobs] == ["RING", "LAZYRING"]
        assert len(errors) == 1

    def test_bad_engine_on_good_target_is_an_error_row(self):
        jobs, errors = self._errors_for(["RING"], engines=("cplex",))
        assert jobs == []
        assert "unknown engine" in errors[0].error
        assert errors[0].name == "RING"


class TestBatchCLIPartialFailure:
    def test_bad_target_reported_but_batch_completes(self, tmp_path, capsys):
        broken = tmp_path / "broken.g"
        broken.write_text("garbage\n")
        rc = main(
            ["batch", str(broken), "RING", "--no-cache", "--jobs", "0"]
        )
        captured = capsys.readouterr()
        assert rc == 2  # an unsound row makes the batch exit 2...
        assert "holds" in captured.out  # ...but RING was still verified
        assert "error" in captured.out
        assert "did not reach a verdict" in captured.err
        assert f"{broken}:csc@invalid" in captured.err

    def test_all_targets_bad_still_structured(self, capsys):
        rc = main(["batch", "NO-SUCH-A", "NO-SUCH-B", "--no-cache"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "NO-SUCH-A" in captured.out and "NO-SUCH-B" in captured.out
