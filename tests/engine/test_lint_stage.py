"""The lint stage-zero of the portfolio pipeline, end to end.

This file carries the acceptance test of the lint subsystem: a statically
USC-safe model must settle through the certifying pre-filter with the pool
spawning *zero* checker tasks.
"""

import json

from repro.engine import events as ev
from repro.engine.batch import build_jobs, run_batch
from repro.engine.cache import SCHEMA_VERSION, ResultCache
from repro.engine.jobs import (
    SOURCE_CACHE,
    SOURCE_FRESH,
    SOURCE_LINT,
    VerificationJob,
)
from repro.engine.pool import WorkerPool
from repro.engine.portfolio import run_jobs
from repro.lint import verify_certificate
from repro.models import toggle_bank, token_ring


def run_inline(jobs, cache=None, lint=True):
    log = ev.EventLog()
    with WorkerPool(max_workers=0, events=log) as pool:
        results = run_jobs(jobs, pool, cache=cache, events=log, lint=lint)
    return results, log


def bank_jobs(properties=("usc",)):
    stg = toggle_bank(3)
    return [
        VerificationJob(stg=stg, property=prop, engines=("ilp",), name="bank")
        for prop in properties
    ]


class TestLintShortCircuit:
    def test_statically_safe_model_never_reaches_the_pool(self):
        """Acceptance: the pool spawns zero checker tasks for a statically
        USC-safe model — lint settles the job before submission."""
        results, log = run_inline(bank_jobs(("usc", "csc")))
        assert log.of_kind(ev.TASK_STARTED) == []
        for result in results:
            assert result.holds is True
            assert result.engine == "lint"
            assert result.source == SOURCE_LINT
            assert result.sound
            assert result.stats["lint_rule"] == "C301"
            assert verify_certificate(toggle_bank(3), result.certificate)

    def test_lint_report_shared_across_properties(self):
        _, log = run_inline(bank_jobs(("usc", "csc")))
        assert len(log.of_kind(ev.LINT_PASS)) == 1
        assert len(log.of_kind(ev.LINT_DECIDED)) == 2
        assert log.stats.lint_passes == 1
        assert log.stats.lint_decided == 2
        assert log.stats.wins_by_engine.get("lint") == 2

    def test_undecided_model_still_runs_the_engines(self):
        stg = token_ring(3)
        jobs = [
            VerificationJob(stg=stg, property="usc", engines=("ilp",), name="ring")
        ]
        results, log = run_inline(jobs)
        assert len(log.of_kind(ev.LINT_PASS)) == 1
        assert log.of_kind(ev.LINT_DECIDED) == []
        assert log.of_kind(ev.TASK_STARTED)  # the pool did the work
        assert results[0].source == SOURCE_FRESH
        assert results[0].engine == "ilp"

    def test_lint_disabled(self):
        results, log = run_inline(bank_jobs(), lint=False)
        assert log.of_kind(ev.LINT_PASS) == []
        assert results[0].engine == "ilp"
        assert results[0].source == SOURCE_FRESH

    def test_lint_decided_results_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        results, _ = run_inline(bank_jobs(), cache=cache)
        assert results[0].source == SOURCE_LINT
        assert len(cache) == 0
        # a second run decides statically again rather than via the cache
        again, log = run_inline(bank_jobs(), cache=cache)
        assert again[0].source == SOURCE_LINT
        assert log.of_kind(ev.CACHE_HIT) == []


class TestResultSource:
    def test_cache_rebadges_source(self, tmp_path):
        cache = ResultCache(tmp_path)
        stg = token_ring(3)
        jobs = [
            VerificationJob(stg=stg, property="usc", engines=("ilp",), name="ring")
        ]
        fresh, _ = run_inline(jobs, cache=cache)
        assert fresh[0].source == SOURCE_FRESH
        assert len(cache) == 1
        warm, _ = run_inline(jobs, cache=cache)
        assert warm[0].source == SOURCE_CACHE
        assert warm[0].from_cache
        assert warm[0].verdict == fresh[0].verdict

    def test_old_schema_payloads_are_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        stg = token_ring(3)
        job = VerificationJob(
            stg=stg, property="usc", engines=("ilp",), name="ring"
        )
        fresh, _ = run_inline([job], cache=cache)
        path = cache._path(cache.key_for(job))
        payload = json.loads(path.read_text())
        payload["schema"] = SCHEMA_VERSION - 1
        path.write_text(json.dumps(payload))
        assert cache.get(job) is None

    def test_batch_report_lint_decided(self, tmp_path):
        from pathlib import Path

        example = Path(__file__).parents[2] / "examples" / "toggle_bank.g"
        jobs = build_jobs(["RING", str(example)], properties=("usc",))
        report = run_batch(jobs, max_workers=0, cache_dir=None)
        assert [r.name for r in report.lint_decided] == ["toggles3"]
        assert report.stats.lint_passes == 2
        assert report.stats.lint_decided == 1
