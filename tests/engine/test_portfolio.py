"""Tests for portfolio racing: arbitration, cancellation, determinism."""

import time

import pytest

from repro.engine import events as ev
from repro.engine.cache import ResultCache
from repro.engine.jobs import (
    VERDICT_ERROR,
    VERDICT_TIMEOUT,
    VerificationJob,
    register_engine,
)
from repro.engine.pool import WorkerPool, fork_available
from repro.engine.portfolio import run_jobs
from repro.models import TABLE1_BENCHMARKS, vme_bus
from tests.conftest import TABLE1_VERDICTS

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _always_failing(job):
    raise RuntimeError("this engine never works")


def _sleeping(job):
    time.sleep(30.0)
    return True, None, {}


register_engine("test-failing", _always_failing)
register_engine("test-sleeping", _sleeping)


def race(jobs, max_workers=2, cache=None, events=None, **pool_kwargs):
    events = events or ev.EventLog()
    with WorkerPool(max_workers=max_workers, events=events, **pool_kwargs) as pool:
        return run_jobs(jobs, pool, cache=cache, events=events), events


class TestRacing:
    @pytest.mark.parametrize("name", ["RING", "LAZYRING"])
    def test_portfolio_agrees_with_pinned_verdicts(self, name):
        job = VerificationJob(
            stg=TABLE1_BENCHMARKS[name](),
            property="csc",
            engines=("ilp", "sat"),
        )
        (result,), events = race([job])
        assert result.sound
        assert result.holds == TABLE1_VERDICTS[name]["csc"]
        assert result.engine in ("ilp", "sat")
        assert events.stats.wins_by_engine.get(result.engine) == 1

    @needs_fork
    def test_losers_are_cancelled(self):
        job = VerificationJob(
            stg=vme_bus(), property="csc", engines=("ilp", "test-sleeping")
        )
        started = time.monotonic()
        (result,), events = race([job])
        assert result.sound and result.engine == "ilp"
        # the sleeper would take 30s; winning must not wait for it
        assert time.monotonic() - started < 10
        assert events.stats.cancelled >= 1

    def test_failed_engine_does_not_fail_the_portfolio(self):
        job = VerificationJob(
            stg=vme_bus(), property="csc", engines=("test-failing", "sg")
        )
        (result,), _ = race([job], max_workers=0)
        assert result.sound
        assert result.engine == "sg"
        assert result.holds is False

    def test_all_engines_failing_fails_the_job(self):
        job = VerificationJob(
            stg=vme_bus(), property="csc", engines=("test-failing",)
        )
        (result,), events = race([job], max_workers=0)
        assert result.verdict == VERDICT_ERROR
        assert "all engines failed" in result.error
        assert "never works" in result.error
        assert len(events.of_kind(ev.JOB_FAILED)) == 1

    @needs_fork
    def test_portfolio_wide_timeout(self):
        job = VerificationJob(
            stg=vme_bus(),
            property="csc",
            engines=("test-sleeping",),
            timeout=0.2,
        )
        (result,), events = race([job], max_workers=1)
        assert result.verdict == VERDICT_TIMEOUT
        assert events.stats.timeouts == 1

    def test_many_jobs_keep_their_order(self):
        names = ["RING", "LAZYRING", "DUP-MOD-A"]
        jobs = [
            VerificationJob(
                stg=TABLE1_BENCHMARKS[name](),
                property=prop,
                engines=("ilp",),
                name=name,
            )
            for name in names
            for prop in ("usc", "csc")
        ]
        results, _ = race(jobs, max_workers=2)
        for job, result in zip(jobs, results):
            assert result.job_id == job.job_id
            assert result.holds == TABLE1_VERDICTS[job.name][job.property]


class TestCacheIntegration:
    def test_cold_then_warm(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = VerificationJob(stg=vme_bus(), property="csc", engines=("ilp",))
        (cold,), events1 = race([job], max_workers=0, cache=cache)
        assert not cold.from_cache
        assert len(events1.of_kind(ev.CACHE_MISS)) == 1
        (warm,), events2 = race([job], max_workers=0, cache=cache)
        assert warm.from_cache
        assert warm.verdict == cold.verdict
        assert len(events2.of_kind(ev.CACHE_HIT)) == 1
        # a cached job never reaches the pool
        assert events2.of_kind(ev.TASK_STARTED) == []

    def test_unsound_outcomes_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = VerificationJob(
            stg=vme_bus(), property="csc", engines=("test-failing",)
        )
        (result,), _ = race([job], max_workers=0, cache=cache)
        assert not result.sound
        assert len(cache) == 0


class TestDeterminism:
    def test_same_job_same_result_modulo_timings(self):
        job = VerificationJob(
            stg=TABLE1_BENCHMARKS["DUP-MOD-A"](),
            property="csc",
            engines=("ilp",),
        )
        (first,), _ = race([job], max_workers=0)
        (second,), _ = race([job], max_workers=0)
        assert first.signature() == second.signature()
        assert first.elapsed > 0 and second.elapsed > 0
