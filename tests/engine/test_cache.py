"""Tests for the content-addressed on-disk result cache."""

import json

from repro.engine.cache import SCHEMA_VERSION, ResultCache
from repro.engine.jobs import (
    VERDICT_TIMEOUT,
    VerificationJob,
    execute_engine,
    failure_result,
)
from repro.models import TABLE1_BENCHMARKS, vme_bus

from tests.stg.test_hashing import build as build_permutable


def _job(prop="csc", name="RING"):
    return VerificationJob(stg=TABLE1_BENCHMARKS[name](), property=prop)


class TestRoundTrip:
    def test_cold_miss_then_warm_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        assert cache.get(job) is None
        assert cache.misses == 1

        result = execute_engine(job, "ilp")
        assert cache.put(job, result)
        cached = cache.get(job)
        assert cached is not None
        assert cache.hits == 1
        assert cached.from_cache is True
        assert cached.verdict == result.verdict
        assert cached.holds == result.holds
        assert cached.engine == result.engine
        assert cached.witness == result.witness
        assert len(cache) == 1

    def test_key_separates_properties(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job("csc"), execute_engine(_job("csc"), "ilp"))
        assert cache.get(_job("usc")) is None

    def test_key_separates_models(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job(), execute_engine(_job(), "ilp"))
        assert cache.get(_job(name="LAZYRING")) is None

    def test_reordered_construction_hits_same_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        original = VerificationJob(stg=build_permutable(), property="csc")
        cache.put(original, execute_engine(original, "sg"))
        reordered = VerificationJob(
            stg=build_permutable(
                place_order=(2, 0, 3, 1), transition_order=(1, 3, 2, 0)
            ),
            property="csc",
        )
        assert cache.get(reordered) is not None

    def test_verdict_served_across_engine_choices(self, tmp_path):
        cache = ResultCache(tmp_path)
        single = VerificationJob(stg=vme_bus(), property="csc", engines=("sg",))
        cache.put(single, execute_engine(single, "sg"))
        portfolio = VerificationJob(
            stg=vme_bus(), property="csc", engines=("ilp", "sat")
        )
        hit = cache.get(portfolio)
        assert hit is not None and hit.engine == "sg"


class TestSoundness:
    def test_unsound_results_never_stored(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        timeout = failure_result(job, VERDICT_TIMEOUT, error="too slow")
        assert cache.put(job, timeout) is False
        assert cache.get(job) is None
        assert len(cache) == 0

    def test_schema_version_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, execute_engine(job, "ilp"))
        (entry,) = list(tmp_path.glob("??/*.json"))
        payload = json.loads(entry.read_text())
        payload["schema"] = SCHEMA_VERSION + 1
        entry.write_text(json.dumps(payload))
        assert cache.get(job) is None

    def test_corrupt_entries_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, execute_engine(job, "ilp"))
        (entry,) = list(tmp_path.glob("??/*.json"))
        entry.write_text("{not json")
        assert cache.get(job) is None


class TestMaintenance:
    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for prop in ("usc", "csc"):
            cache.put(_job(prop), execute_engine(_job(prop), "ilp"))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_empty_cache_dir_never_created_eagerly(self, tmp_path):
        cache = ResultCache(tmp_path / "sub")
        assert len(cache) == 0
        assert cache.clear() == 0
        assert not (tmp_path / "sub").exists()
