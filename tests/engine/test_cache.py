"""Tests for the content-addressed on-disk result cache."""

import json

from repro.engine.cache import SCHEMA_VERSION, ResultCache
from repro.engine.jobs import (
    VERDICT_TIMEOUT,
    VerificationJob,
    execute_engine,
    failure_result,
)
from repro.models import TABLE1_BENCHMARKS, vme_bus

from tests.stg.test_hashing import build as build_permutable


def _job(prop="csc", name="RING"):
    return VerificationJob(stg=TABLE1_BENCHMARKS[name](), property=prop)


class TestRoundTrip:
    def test_cold_miss_then_warm_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        assert cache.get(job) is None
        assert cache.misses == 1

        result = execute_engine(job, "ilp")
        assert cache.put(job, result)
        cached = cache.get(job)
        assert cached is not None
        assert cache.hits == 1
        assert cached.from_cache is True
        assert cached.verdict == result.verdict
        assert cached.holds == result.holds
        assert cached.engine == result.engine
        assert cached.witness == result.witness
        assert len(cache) == 1

    def test_key_separates_properties(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job("csc"), execute_engine(_job("csc"), "ilp"))
        assert cache.get(_job("usc")) is None

    def test_key_separates_models(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job(), execute_engine(_job(), "ilp"))
        assert cache.get(_job(name="LAZYRING")) is None

    def test_reordered_construction_hits_same_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        original = VerificationJob(stg=build_permutable(), property="csc")
        cache.put(original, execute_engine(original, "sg"))
        reordered = VerificationJob(
            stg=build_permutable(
                place_order=(2, 0, 3, 1), transition_order=(1, 3, 2, 0)
            ),
            property="csc",
        )
        assert cache.get(reordered) is not None

    def test_verdict_served_across_engine_choices(self, tmp_path):
        cache = ResultCache(tmp_path)
        single = VerificationJob(stg=vme_bus(), property="csc", engines=("sg",))
        cache.put(single, execute_engine(single, "sg"))
        portfolio = VerificationJob(
            stg=vme_bus(), property="csc", engines=("ilp", "sat")
        )
        hit = cache.get(portfolio)
        assert hit is not None and hit.engine == "sg"


class TestSoundness:
    def test_unsound_results_never_stored(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        timeout = failure_result(job, VERDICT_TIMEOUT, error="too slow")
        assert cache.put(job, timeout) is False
        assert cache.get(job) is None
        assert len(cache) == 0

    def test_schema_version_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, execute_engine(job, "ilp"))
        (entry,) = list(tmp_path.glob("??/*.json"))
        payload = json.loads(entry.read_text())
        payload["schema"] = SCHEMA_VERSION + 1
        entry.write_text(json.dumps(payload))
        assert cache.get(job) is None

    def test_corrupt_entries_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, execute_engine(job, "ilp"))
        (entry,) = list(tmp_path.glob("??/*.json"))
        entry.write_text("{not json")
        assert cache.get(job) is None


class TestMaintenance:
    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for prop in ("usc", "csc"):
            cache.put(_job(prop), execute_engine(_job(prop), "ilp"))
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_empty_cache_dir_never_created_eagerly(self, tmp_path):
        cache = ResultCache(tmp_path / "sub")
        assert len(cache) == 0
        assert cache.clear() == 0
        assert not (tmp_path / "sub").exists()


class TestStats:
    def test_empty_store(self, tmp_path):
        stats = ResultCache(tmp_path / "nope").stats()
        assert stats["entries"] == 0
        assert stats["total_bytes"] == 0
        assert stats["oldest_mtime"] is None

    def test_breakdowns(self, tmp_path):
        cache = ResultCache(tmp_path)
        for prop in ("usc", "csc"):
            cache.put(_job(prop), execute_engine(_job(prop), "ilp"))
        cache.put(
            _job("csc", "LAZYRING"),
            execute_engine(_job("csc", "LAZYRING"), "ilp"),
        )
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["total_bytes"] > 0
        assert stats["by_property"] == {"usc": 1, "csc": 2}
        # RING holds CSC but violates USC; LAZYRING violates CSC
        assert stats["by_verdict"] == {"holds": 1, "violated": 2}
        assert stats["by_schema"] == {str(SCHEMA_VERSION): 3}
        assert stats["oldest_mtime"] <= stats["newest_mtime"]
        assert stats["unreadable"] == 0

    def test_unreadable_entries_counted_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_job(), execute_engine(_job(), "ilp"))
        (entry,) = list(tmp_path.glob("??/*.json"))
        entry.write_text("{broken")
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["unreadable"] == 1


class TestPrune:
    def test_prunes_only_old_entries(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path)
        cache.put(_job("usc"), execute_engine(_job("usc"), "ilp"))
        cache.put(_job("csc"), execute_engine(_job("csc"), "ilp"))
        old = cache._path(cache.key_for(_job("usc")))
        week_ago = time.time() - 7 * 86400
        os.utime(old, (week_ago, week_ago))
        assert cache.prune(older_than=86400) == 1
        assert not old.exists()
        assert cache.get(_job("csc")) is not None
        # nothing left over the cutoff: pruning again removes nothing
        assert cache.prune(older_than=86400) == 0

    def test_prune_zero_removes_everything_old_keeps_now(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        cache.put(_job(), execute_engine(_job(), "ilp"))
        (entry,) = list(tmp_path.glob("??/*.json"))
        os.utime(entry, (1.0, 1.0))
        assert cache.prune(older_than=0) == 1

    def test_prune_sweeps_orphaned_tmp_files(self, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        cache.put(_job(), execute_engine(_job(), "ilp"))
        orphan = tmp_path / "ab" / ".tmp-dead.json"
        orphan.parent.mkdir(exist_ok=True)
        orphan.write_text("{}")
        os.utime(orphan, (1.0, 1.0))
        # tmp files do not count as removed entries, but they are gone
        assert cache.prune(older_than=3600) == 0
        assert not orphan.exists()

    def test_negative_age_rejected(self, tmp_path):
        import pytest

        with pytest.raises(ValueError):
            ResultCache(tmp_path).prune(older_than=-1)

    def test_missing_root_is_a_noop(self, tmp_path):
        assert ResultCache(tmp_path / "nope").prune(older_than=0) == 0


class TestConcurrentWriters:
    """The atomic temp-file + rename contract under real thread races."""

    def test_same_key_concurrent_puts_never_tear(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path)
        job = _job()
        result = execute_engine(job, "ilp")
        writers = 8
        rounds = 25
        barrier = threading.Barrier(writers + 1)
        failures = []

        def writer():
            barrier.wait()
            for _ in range(rounds):
                if not cache.put(job, result):
                    failures.append("put returned False")

        def reader():
            barrier.wait()
            read_cache = ResultCache(tmp_path)  # separate counters
            seen = 0
            while seen < rounds:
                got = read_cache.get(job)
                if got is None:
                    continue  # not yet written at all: fine, retry
                seen += 1
                # a torn write would produce invalid JSON -> a miss, or a
                # mangled payload; both would break these invariants
                if got.verdict != result.verdict or got.holds != result.holds:
                    failures.append(f"torn read: {got}")

        threads = [threading.Thread(target=writer) for _ in range(writers)]
        threads.append(threading.Thread(target=reader))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert failures == []
        assert len(cache) == 1  # all writers converged on one entry
        final = cache.get(job)
        assert final is not None and final.verdict == result.verdict
        # no temp-file litter survived the rename dance
        assert list(tmp_path.glob("??/.tmp-*")) == []

    def test_interleaved_distinct_keys(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path)
        jobs = {prop: _job(prop) for prop in ("usc", "csc")}
        results = {
            prop: execute_engine(job, "ilp") for prop, job in jobs.items()
        }
        barrier = threading.Barrier(2)

        def hammer(prop):
            barrier.wait()
            for _ in range(50):
                cache.put(jobs[prop], results[prop])
                got = cache.get(jobs[prop])
                assert got is not None
                assert got.property == prop
                assert got.holds == results[prop].holds

        threads = [
            threading.Thread(target=hammer, args=(prop,)) for prop in jobs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert len(cache) == 2


class TestRefineDomains:
    """The v4 refine-cert / refine-cuts key domains."""

    _HASH = "a" * 64

    def _cert_body(self, cuts_after=0):
        return {
            "bound": {"place": "p", "sign": 1, "y_eq": {}, "y_ub": {}},
            "cuts_after": cuts_after,
            "cuts_referenced": cuts_after > 0,
        }

    def test_cert_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_refine_cert(self._HASH, "p", 1, "h") is None
        assert cache.misses == 1
        assert cache.put_refine_cert(self._HASH, "p", 1, "h", self._cert_body())
        body = cache.get_refine_cert(self._HASH, "p", 1, "h")
        assert body == self._cert_body()
        assert cache.hits == 1

    def test_cert_key_separates_place_sign_and_cut_state(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_refine_cert(self._HASH, "p", 1, "h", self._cert_body())
        assert cache.get_refine_cert(self._HASH, "q", 1, "h") is None
        assert cache.get_refine_cert(self._HASH, "p", -1, "h") is None
        assert cache.get_refine_cert(self._HASH, "p", 1, "other") is None
        assert cache.get_refine_cert("b" * 64, "p", 1, "h") is None

    def test_cuts_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_refine_cuts(self._HASH) is None
        log = [{"kind": "trap", "places": ["p0"], "marked": True}]
        assert cache.put_refine_cuts(self._HASH, log)
        assert cache.get_refine_cuts(self._HASH) == log

    def test_domains_never_collide_with_results(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, execute_engine(job, "sg"))
        cache.put_refine_cert(
            job.stg_hash, "p", 1, "h", self._cert_body()
        )
        cache.put_refine_cuts(job.stg_hash, [])
        assert len(cache) == 3
        assert cache.get(job) is not None

    def test_stats_by_domain(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = _job()
        cache.put(job, execute_engine(job, "sg"))
        cache.put_refine_cert(self._HASH, "p", 1, "h", self._cert_body())
        cache.put_refine_cuts(self._HASH, [])
        by_domain = cache.stats()["by_domain"]
        assert by_domain == {
            "result": 1,
            "refine-cert": 1,
            "refine-cuts": 1,
        }

    def test_corrupt_cert_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_refine_cert(self._HASH, "p", 1, "h", self._cert_body())
        key = cache.refine_cert_key_for(self._HASH, "p", 1, "h")
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get_refine_cert(self._HASH, "p", 1, "h") is None


class TestPruneConsistency:
    """Pruning must never leave certs pointing at a vanished cut log."""

    _HASH = "c" * 64

    def _populate(self, cache, cuts_referenced):
        cache.put_refine_cuts(
            self._HASH, [{"kind": "trap", "places": ["p"], "marked": True}]
        )
        cache.put_refine_cert(
            self._HASH,
            "p",
            1,
            "h",
            {
                "bound": {"place": "p", "sign": 1, "y_eq": {}, "y_ub": {}},
                "cuts_after": 1 if cuts_referenced else 0,
                "cuts_referenced": cuts_referenced,
            },
        )

    def test_orphaned_referencing_cert_is_removed(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path)
        self._populate(cache, cuts_referenced=True)
        # age only the cut log past the cutoff: the age sweep removes it,
        # then the consistency pass must take the referencing cert with it
        log_path = cache._path(cache.refine_cuts_key_for(self._HASH))
        old = time.time() - 3600
        os.utime(log_path, (old, old))
        removed = cache.prune(older_than=60)
        assert removed == 2
        assert cache.get_refine_cuts(self._HASH) is None
        assert cache.get_refine_cert(self._HASH, "p", 1, "h") is None

    def test_cut_free_cert_survives_log_removal(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path)
        self._populate(cache, cuts_referenced=False)
        log_path = cache._path(cache.refine_cuts_key_for(self._HASH))
        old = time.time() - 3600
        os.utime(log_path, (old, old))
        removed = cache.prune(older_than=60)
        assert removed == 1
        # a bound certified under zero cuts replays without any log
        assert cache.get_refine_cert(self._HASH, "p", 1, "h") is not None

    def test_fresh_pair_untouched(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._populate(cache, cuts_referenced=True)
        assert cache.prune(older_than=3600) == 0
        assert cache.get_refine_cuts(self._HASH) is not None
        assert cache.get_refine_cert(self._HASH, "p", 1, "h") is not None
