"""Golden-file lint sweep over every bundled model.

The golden file pins exit code, summary, fired rule ids and static
decisions for each registered benchmark and classic model plus the
scalable families at small sizes.  Any rule change that alters what fires
on a bundled model must update ``golden_models.json`` deliberately:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/lint/test_golden_models.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.models import (
    CLASSIC_MODELS,
    TABLE1_BENCHMARKS,
    muller_pipeline,
    muller_ring,
    parallel_forks,
    toggle_bank,
    vme_bus,
    vme_bus_csc_resolved,
)

GOLDEN_PATH = Path(__file__).with_name("golden_models.json")


def sweep_targets():
    targets = {}
    for name, factory in sorted(TABLE1_BENCHMARKS.items()):
        targets[name] = factory
    for name, factory in sorted(CLASSIC_MODELS.items()):
        targets[f"classic:{name}"] = factory
    targets["vme_bus"] = vme_bus
    targets["vme_bus_csc_resolved"] = vme_bus_csc_resolved
    targets["muller_pipeline(3)"] = lambda: muller_pipeline(3)
    targets["muller_ring(4)"] = lambda: muller_ring(4)
    targets["parallel_forks(3)"] = lambda: parallel_forks(3)
    targets["toggle_bank(3)"] = lambda: toggle_bank(3)
    return targets


def lint_snapshot(stg):
    report = run_lint(stg)
    return {
        "exit_code": report.exit_code,
        "summary": report.summary(),
        "rules": sorted({d.rule_id for d in report.diagnostics}),
        "decisions": {
            prop: {"holds": dec.holds, "rule": dec.diagnostic.rule_id}
            for prop, dec in sorted(report.decisions().items())
        },
    }


def load_golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def test_regenerate_golden_when_asked():
    if not os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("set REPRO_REGEN_GOLDEN=1 to rewrite the golden file")
    golden = {name: lint_snapshot(factory()) for name, factory in sweep_targets().items()}
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")


def test_golden_covers_every_target():
    assert sorted(load_golden()) == sorted(sweep_targets())


@pytest.mark.parametrize("name", sorted(sweep_targets()))
def test_model_matches_golden(name):
    expected = load_golden()[name]
    assert lint_snapshot(sweep_targets()[name]()) == expected


def test_golden_has_the_interesting_rows():
    """Sanity-check the golden file itself, not just conformance to it."""
    golden = load_golden()
    # the deliberately CSC-conflicted classic toggle is the one true positive
    assert golden["classic:toggle"]["rules"] == ["S206"]
    assert golden["classic:toggle"]["exit_code"] == 1
    # the affine family is statically decided without touching the pool
    bank = golden["toggle_bank(3)"]
    assert bank["decisions"]["usc"] == {"holds": True, "rule": "C301"}
    assert bank["decisions"]["csc"] == {"holds": True, "rule": "C301"}
    # everything else lints clean: no false positives on real benchmarks
    noisy = {
        name
        for name, snap in golden.items()
        if snap["exit_code"] != 0 and name != "classic:toggle"
    }
    assert noisy == set()
