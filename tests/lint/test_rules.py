"""Per-rule positive/negative tests on small crafted STGs."""

from repro.lint import run_lint
from repro.models import duplex_channel, toggle
from repro.stg.parser import parse_stg
from repro.stg.stg import STG, SignalEdge

TOGGLE_G = """
.model clean-toggle
.outputs z
.graph
z+ p1
p1 z-
z- p0
p0 z+
.marking { p0 }
.end
"""


def toggle_stg():
    return parse_stg(TOGGLE_G)


class TestWellFormedness:
    def test_clean_toggle_is_clean(self):
        report = run_lint(toggle_stg())
        assert report.exit_code == 0
        assert not report.warnings and not report.errors

    def test_w101_isolated_place_and_transition(self):
        stg = toggle_stg()
        stg.add_place("orphan")
        stg.add_transition("z+/2", SignalEdge("z", +1))
        report = run_lint(stg)
        findings = report.of_rule("W101")
        assert {d.subject for d in findings} == {"orphan", "z+/2"}

    def test_w102_dead_place(self):
        stg = parse_stg(
            ".model dead\n.outputs z\n.graph\nz+ p1\np1 z-\nz- p0\n"
            "p0 z+\nq z+\n.marking { p0 }\n.end\n"
        )
        report = run_lint(stg)
        dead = report.of_rule("W102")
        assert len(dead) == 1 and dead[0].subject == "q"
        assert report.exit_code == 2
        # an error suppresses the certifying pre-filter tier
        assert "C301" not in report.rules_run

    def test_w103_dummy_transitions(self):
        stg = parse_stg(
            ".model dum\n.outputs z\n.dummy t\n.graph\nz+ p\np t\nt q\n"
            "q z-\nz- r\nr z+\n.marking { r }\n.end\n"
        )
        report = run_lint(stg)
        silent = report.of_rule("W103")
        assert len(silent) == 1 and silent[0].subject == "t"
        assert silent[0].severity == "info"

    def test_w104_weighted_arc(self):
        stg = STG("w104", outputs=["z"])
        stg.add_place("p0", 1)
        stg.add_place("p1")
        stg.add_transition("z+", SignalEdge("z", +1))
        stg.add_transition("z-", SignalEdge("z", -1))
        stg.add_arc("p0", "z+")
        stg.net.add_arc("z+", "p1", weight=2)
        stg.add_arc("p1", "z-")
        stg.add_arc("z-", "p0")
        report = run_lint(stg)
        assert report.of_rule("W104")
        assert report.exit_code == 2

    def test_w105_multi_token_place(self):
        stg = toggle_stg()
        stg.net.set_tokens("p0", 2)
        report = run_lint(stg)
        heavy = report.of_rule("W105")
        assert len(heavy) == 1 and heavy[0].subject == "p0"

    def test_w106_source_transition(self):
        stg = parse_stg(
            ".model src\n.outputs z y\n.graph\nz+ p1\np1 z-\nz- p0\n"
            "p0 z+\ny+ p2\np2 y-\n.marking { p0 }\n.end\n"
        )
        report = run_lint(stg)
        sources = report.of_rule("W106")
        assert {d.subject for d in sources} == {"y+"}
        # a fully isolated transition is W101's finding, not W106's
        stg2 = toggle_stg()
        stg2.add_transition("z-/2", SignalEdge("z", -1))
        report2 = run_lint(stg2)
        assert not report2.of_rule("W106")
        assert report2.of_rule("W101")


class TestSemantics:
    def test_s201_fork_to_same_signal_edges(self):
        # a dummy fork makes x+ and x+/2 genuinely concurrent
        stg = parse_stg(
            ".model fork\n.outputs x\n.dummy t u\n.graph\n"
            "t p q\n"
            "p x+\nx+ r\nr x-\nx- m\n"
            "q x+/2\nx+/2 r2\nr2 x-/2\nx-/2 m2\n"
            "m u\nm2 u\nu t\n"
            ".marking { <u,t> }\n.end\n"
        )
        report = run_lint(stg)
        findings = report.of_rule("S201")
        assert findings and findings[0].subject == "x"

    def test_s201_silent_on_handshake(self):
        stg = parse_stg(
            ".model hs\n.outputs a b\n.graph\na+ p1\np1 b+\nb+ p2\n"
            "p2 a-\na- p3\np3 b-\nb- p0\np0 a+\n.marking { p0 }\n.end\n"
        )
        assert not run_lint(stg).of_rule("S201")

    def test_s202_s203_unbalanced_edges(self):
        stg = parse_stg(
            ".model unb\n.outputs z\n.graph\nz+ p\np z+/2\nz+/2 q\n"
            "q z-\nz- r\nr z+\n.marking { r }\n.end\n"
        )
        report = run_lint(stg)
        assert report.of_rule("S202")
        assert report.of_rule("S203")
        # consistency-risk warnings gate the certifying tier
        assert "C301" not in report.rules_run

    def test_s202_silent_on_consistent_choice(self):
        # two falling alternatives for one rising edge, but every edge lies
        # on a code-balanced cycle: a legitimate choice spec, no warning
        report = run_lint(duplex_channel("4ph-mtr-a"))
        assert not report.of_rule("S202")

    def test_s204_single_polarity(self):
        stg = parse_stg(
            ".model sp\n.inputs a\n.outputs z\n.graph\na+ p\np z+\nz+ q\n"
            "q a-\na- r\nr a+\n.marking { r }\n.end\n"
        )
        report = run_lint(stg)
        single = report.of_rule("S204")
        assert len(single) == 1 and single[0].subject == "z"

    def test_s205_self_driven_input(self):
        stg = parse_stg(
            ".model sd\n.inputs a\n.graph\na+ p\np a-\na- q\nq a+\n"
            ".marking { q }\n.end\n"
        )
        report = run_lint(stg)
        driven = report.of_rule("S205")
        assert len(driven) == 1 and driven[0].subject == "a"
        assert driven[0].fixit

    def test_s205_silent_when_externally_triggered(self):
        stg = parse_stg(
            ".model ext\n.inputs a\n.outputs z\n.graph\na+ p\np z+\nz+ q\n"
            "q a-\na- r\nr z-\nz- s\ns a+\n.marking { s }\n.end\n"
        )
        assert not run_lint(stg).of_rule("S205")

    def test_s206_unobserved_pulse(self):
        report = run_lint(toggle())
        pulses = report.of_rule("S206")
        assert pulses and pulses[0].subject == "i"

    def test_s206_silent_on_two_phase_loop(self):
        assert not run_lint(toggle_stg()).of_rule("S206")


class TestRunLintOptions:
    def test_rule_selection(self):
        stg = toggle_stg()
        stg.add_place("orphan")
        report = run_lint(stg, rules=["S*"])
        assert not report.of_rule("W101")  # well-formedness not selected
        assert all(r.startswith("S") for r in report.rules_run)

    def test_prefilter_disabled(self):
        from repro.models import toggle_bank

        report = run_lint(toggle_bank(2), prefilter=False)
        assert not report.decisions()
        assert "C301" not in report.rules_run
