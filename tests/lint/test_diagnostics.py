"""Tests for the diagnostic/report data model and the rule registry."""

import pytest

from repro.lint import (
    Diagnostic,
    LintReport,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    TIER_ANALYSIS,
    TIER_PREFILTER,
    TIER_SEMANTICS,
    TIER_WELLFORMED,
    all_rules,
    select_rules,
)
from repro.lint.registry import RULES, rule
from repro.stg.sourcemap import SourceSpan


def diag(rule_id="X001", severity=SEVERITY_WARNING, **kwargs):
    return Diagnostic(rule_id=rule_id, severity=severity, message="m", **kwargs)


class TestDiagnostic:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            diag(severity="fatal")

    def test_location_prefers_span(self):
        span = SourceSpan(line=3, column=7, length=2, file="x.g")
        assert diag(span=span).location == "x.g:3:7"
        assert diag(subject="z").location == "z"
        assert diag().location == "<stg>"

    def test_to_dict_round_trip(self):
        d = diag(
            span=SourceSpan(line=1, column=2, length=3, file="f.g"),
            fixit="do the thing",
            decides={"usc": True},
            certificate={"kind": "affine-code"},
        )
        payload = d.to_dict()
        assert payload["rule"] == "X001"
        assert payload["span"] == {
            "file": "f.g", "line": 1, "column": 2, "length": 3,
        }
        assert payload["fixit"] == "do the thing"
        assert payload["decides"] == {"usc": True}
        assert payload["certificate"]["kind"] == "affine-code"
        # optional keys are omitted when absent
        assert "fixit" not in diag().to_dict()


class TestLintReport:
    def test_exit_codes(self):
        report = LintReport(stg_name="x")
        assert report.exit_code == 0 and report.summary() == "clean"
        report.extend([diag(severity=SEVERITY_INFO)])
        assert report.exit_code == 0
        report.extend([diag(severity=SEVERITY_WARNING)])
        assert report.exit_code == 1
        report.extend([diag(severity=SEVERITY_ERROR)])
        assert report.exit_code == 2
        assert report.summary() == "1 error, 1 warning, 1 info"

    def test_decisions_first_wins(self):
        first = diag(rule_id="C301", severity=SEVERITY_INFO, decides={"usc": True})
        second = diag(rule_id="C302", severity=SEVERITY_INFO, decides={"usc": False})
        report = LintReport(stg_name="x", diagnostics=[first, second])
        decisions = report.decisions()
        assert decisions["usc"].holds is True
        assert decisions["usc"].diagnostic.rule_id == "C301"

    def test_sorted_by_severity_then_position(self):
        spanned = diag(
            severity=SEVERITY_WARNING, span=SourceSpan(line=2, column=1)
        )
        later = diag(severity=SEVERITY_WARNING, span=SourceSpan(line=9, column=1))
        error = diag(severity=SEVERITY_ERROR, span=SourceSpan(line=50, column=1))
        report = LintReport(stg_name="x", diagnostics=[later, error, spanned])
        assert report.sorted_diagnostics() == [error, spanned, later]


class TestRegistry:
    def test_builtin_rule_set(self):
        rules = all_rules()
        ids = [r.rule_id for r in rules]
        assert len(ids) == len(set(ids))
        # the acceptance bar: at least 10 distinct rules across four tiers
        assert len(ids) >= 10
        tiers = {r.tier for r in rules}
        assert tiers == {
            TIER_WELLFORMED,
            TIER_SEMANTICS,
            TIER_PREFILTER,
            TIER_ANALYSIS,
        }
        assert all(r.doc for r in rules), "every rule documents itself"

    def test_duplicate_id_rejected(self):
        with pytest.raises(ValueError, match="duplicate rule id"):

            @rule("W101", "clone", TIER_WELLFORMED, SEVERITY_WARNING)
            def clone(context):
                return iter(())

        assert RULES["W101"].name == "isolated-node"  # original untouched

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown tier"):

            @rule("X999", "x", "style", SEVERITY_WARNING)
            def styled(context):
                return iter(())

    def test_select_rules_globs(self):
        wellformed = select_rules(["W*"])
        assert wellformed and all(
            r.rule_id.startswith("W") for r in wellformed
        )
        by_name = select_rules(["usc-affine-certificate"])
        assert [r.rule_id for r in by_name] == ["C301"]
        assert select_rules(["nope-*"]) == []
