"""Tests for the conflict pre-filter tier and its certificates."""

import copy

from repro.lint import (
    CERT_AFFINE,
    CERT_LP,
    build_affine_certificate,
    build_lp_certificate,
    run_lint,
    state_equation_usc_safe,
    verify_certificate,
)
from repro.models import lazy_ring, token_ring, toggle_bank
from repro.stg.parser import parse_stg

TOGGLE_G = """
.model clean-toggle
.outputs z
.graph
z+ p1
p1 z-
z- p0
p0 z+
.marking { p0 }
.end
"""


class TestAffineCertificate:
    def test_toggle_bank_is_certified(self):
        stg = toggle_bank(3)
        cert = build_affine_certificate(stg)
        assert cert is not None
        assert cert["kind"] == CERT_AFFINE
        assert verify_certificate(stg, cert)

    def test_tampered_certificate_fails(self):
        stg = toggle_bank(2)
        cert = build_affine_certificate(stg)
        bad = copy.deepcopy(cert)
        bad["matrix"][0][0] = "7/3"
        assert not verify_certificate(stg, bad)

    def test_certificate_is_bound_to_its_stg(self):
        cert = build_affine_certificate(toggle_bank(2))
        other = toggle_bank(3)
        assert not verify_certificate(other, cert)

    def test_unknown_kind_and_version_rejected(self):
        stg = toggle_bank(2)
        cert = build_affine_certificate(stg)
        assert not verify_certificate(stg, {**cert, "kind": "magic"})
        assert not verify_certificate(stg, {**cert, "version": 99})

    def test_no_certificate_for_ring(self):
        # token rings have concurrent tokens: markings are not an affine
        # function of the code, and the builder must say so
        assert build_affine_certificate(token_ring(3)) is None

    def test_guards(self):
        from repro.stg.stg import STG

        assert build_affine_certificate(STG("empty")) is None
        dummy_stg = parse_stg(
            ".model d\n.outputs z\n.dummy t\n.graph\nz+ p\np t\nt q\n"
            "q z-\nz- r\nr z+\n.marking { r }\n.end\n"
        )
        assert build_affine_certificate(dummy_stg) is None


class TestLPCertificate:
    def test_state_equation_certifies_simple_toggle(self):
        assert state_equation_usc_safe(parse_stg(TOGGLE_G))

    def test_state_equation_rejects_conflicted_ring(self):
        # LAZYRING has real USC conflicts; the relaxation must not certify it
        assert not state_equation_usc_safe(lazy_ring(2))

    def test_lp_certificate_round_trip(self):
        stg = parse_stg(TOGGLE_G)
        cert = build_lp_certificate(stg)
        assert cert is not None and cert["kind"] == CERT_LP
        assert verify_certificate(stg, cert)
        assert not verify_certificate(lazy_ring(2), cert)


class TestPrefilterRules:
    def test_c301_decides_usc_and_csc(self):
        report = run_lint(toggle_bank(3))
        decisions = report.decisions()
        assert decisions["usc"].holds is True
        assert decisions["csc"].holds is True
        assert decisions["usc"].diagnostic.rule_id == "C301"
        cert = decisions["usc"].diagnostic.certificate
        assert verify_certificate(toggle_bank(3), cert)

    def test_c302_runs_when_c301_excluded(self):
        report = run_lint(
            parse_stg(TOGGLE_G), rules=["W*", "S*", "usc-state-equation"]
        )
        assert "C302" in report.rules_run and "C301" not in report.rules_run
        decisions = report.decisions()
        assert decisions["usc"].diagnostic.rule_id == "C302"
        assert decisions["usc"].diagnostic.certificate["kind"] == CERT_LP

    def test_c302_skipped_once_decided(self):
        report = run_lint(parse_stg(TOGGLE_G))
        assert report.decisions()["usc"].diagnostic.rule_id == "C301"
        # C302 ran but found the property already decided and stayed silent
        assert not report.of_rule("C302")

    def test_sound_on_conflicted_models(self):
        # models with genuine conflicts must stay undecided, never "safe"
        for stg in (token_ring(3), lazy_ring(2)):
            decisions = run_lint(stg).decisions()
            assert "usc" not in decisions and "csc" not in decisions

    def test_dummies_gate_the_prefilters(self):
        dummy_stg = parse_stg(
            ".model d\n.outputs z\n.dummy t\n.graph\nz+ p\np t\nt q\n"
            "q z-\nz- r\nr z+\n.marking { r }\n.end\n"
        )
        report = run_lint(dummy_stg)
        assert not report.decisions()

    def test_errors_gate_the_prefilter_tier(self):
        broken = parse_stg(
            ".model b\n.outputs z\n.graph\nz+ p1\np1 z-\nz- p0\np0 z+\n"
            "q z+\n.marking { p0 }\n.end\n"
        )
        report = run_lint(broken)
        assert report.errors
        assert "C301" not in report.rules_run
        assert "C302" not in report.rules_run

    def test_size_budget_skips_c302(self):
        report = run_lint(
            parse_stg(TOGGLE_G),
            rules=["usc-state-equation"],
            size_budget=1,
        )
        assert not report.decisions()
