"""Tests for text and JSON rendering of lint reports."""

import json

from repro.lint import render_json, render_text, report_to_dict, run_lint
from repro.models import toggle, toggle_bank
from repro.stg.parser import parse_stg

SPANNED_G = """.model spanned
.outputs z
.graph
z+ p1
p1 z-
z- p0
p0 z+
q z+
.marking { p0 }
.end
"""


class TestText:
    def test_locations_and_summary_line(self):
        stg = parse_stg(SPANNED_G, filename="spanned.g")
        text = render_text(run_lint(stg))
        assert "spanned.g:8:1: error[W102]" in text
        # the dangling place also breaks z's two-phase loop, hence S206 too
        assert text.strip().endswith("spanned: 1 error, 1 warning")

    def test_clean_report(self):
        # prefilter off: the healthy toggle would otherwise earn a C301 info
        report = run_lint(
            parse_stg(SPANNED_G.replace("q z+\n", "")), prefilter=False
        )
        assert render_text(report).strip() == "spanned: clean"

    def test_verbose_appends_fix_and_decides(self):
        report = run_lint(toggle_bank(2))
        text = render_text(report, verbose=True)
        assert "decides: csc=holds, usc=holds" in text
        quiet = render_text(report)
        assert "decides:" not in quiet

    def test_color_wraps_severities(self):
        report = run_lint(toggle())
        colored = render_text(report, color=True)
        assert "\x1b[" in colored
        assert "\x1b[" not in render_text(report)


class TestJSON:
    def test_report_to_dict_shape(self):
        stg = parse_stg(SPANNED_G, filename="spanned.g")
        payload = report_to_dict(run_lint(stg))
        assert payload["stg"] == "spanned"
        assert payload["exit_code"] == 2
        assert payload["summary"] == "1 error, 1 warning"
        assert any(r.startswith("W1") for r in payload["rules_run"])
        diag = payload["diagnostics"][0]
        assert diag["rule"] == "W102"
        assert diag["span"]["line"] == 8

    def test_decisions_serialised(self):
        payload = report_to_dict(run_lint(toggle_bank(2)))
        assert payload["decisions"]["usc"] == {"holds": True, "rule": "C301"}

    def test_render_json_parses(self):
        report = run_lint(toggle())
        payload = json.loads(render_json(report))
        assert payload["exit_code"] == 1
        assert payload["diagnostics"][0]["rule"] == "S206"
