"""Tests for next-state function derivation, synthesis and CSC resolution."""

import pytest

from repro.core import check_csc
from repro.exceptions import ReproError
from repro.models import TABLE1_BENCHMARKS, vme_bus, vme_bus_csc_resolved
from repro.models._build import seq
from repro.stg.stategraph import build_state_graph
from repro.stg.stg import STG
from repro.synthesis import resolve_csc, synthesise
from repro.synthesis.functions import (
    CSCViolationError,
    csc_conflict_signals,
    derive_next_state_functions,
)


class TestNextStateFunctions:
    def test_vme_conflict_detected_as_ambiguity(self, vme):
        with pytest.raises(CSCViolationError):
            derive_next_state_functions(vme)

    def test_non_strict_reports_signals(self, vme):
        implicated = csc_conflict_signals(vme)
        # the Figure 1 conflict involves outputs d and lds
        assert set(implicated) == {"d", "lds"}

    def test_resolved_vme_well_defined(self, vme_csc):
        functions = derive_next_state_functions(vme_csc)
        assert all(fn.well_defined for fn in functions.values())

    def test_state_based_csc_matches_ip_method(self, table1_stg):
        """Ill-defined next-state functions <=> CSC conflict."""
        implicated = csc_conflict_signals(table1_stg)
        assert bool(implicated) == (not check_csc(table1_stg).holds)

    def test_on_off_sets_partition_reachable_codes(self, vme_csc):
        graph = build_state_graph(vme_csc)
        functions = derive_next_state_functions(vme_csc, graph)
        reachable = set()
        for state in range(graph.num_states):
            minterm = 0
            for i, bit in enumerate(graph.code(state)):
                if bit:
                    minterm |= 1 << i
            reachable.add(minterm)
        for fn in functions.values():
            assert fn.on_set | fn.off_set == reachable
            assert not fn.on_set & fn.off_set


class TestSynthesise:
    def test_figure3_equations(self, vme_csc):
        """The paper gives dtack = d for the resolved controller; our
        synthesis must reproduce it (the simplest of the four equations)."""
        result = synthesise(vme_csc)
        dtack = result.per_signal["dtack"]
        names = result.names
        assert dtack.complex_gate.to_string(names) == "d"

    def test_covers_verify_against_state_graph(self, vme_csc):
        result = synthesise(vme_csc)
        assert result.verify(build_state_graph(vme_csc))

    def test_gc_covers_correct(self, vme_csc):
        """Set/reset covers must match the excitation regions."""
        graph = build_state_graph(vme_csc)
        result = synthesise(vme_csc)
        for signal, impl in result.per_signal.items():
            z = vme_csc.signal_index(signal)
            for state in range(graph.num_states):
                code = graph.code(state)
                minterm = sum(1 << i for i, b in enumerate(code) if b)
                nxt = graph.next_state_vector(state, signal)
                if code[z] == 0 and nxt == 1:
                    assert impl.set_cover.evaluate(minterm)
                if code[z] == 0 and nxt == 0:
                    assert not impl.set_cover.evaluate(minterm)
                if code[z] == 1 and nxt == 0:
                    assert impl.reset_cover.evaluate(minterm)
                if code[z] == 1 and nxt == 1:
                    assert not impl.reset_cover.evaluate(minterm)

    def test_simple_buffer_equation(self):
        stg = STG("buf", inputs=["a"], outputs=["z"])
        seq(stg, "a+", "z+", "a-", "z-")
        seq(stg, "z-", "a+", marked=True)
        result = synthesise(stg)
        assert result.per_signal["z"].complex_gate.to_string(["a", "z"]) == "a"
        assert result.per_signal["z"].monotonic

    def test_unsynthesisable_raises(self, vme):
        with pytest.raises(CSCViolationError):
            synthesise(vme)

    def test_conflict_free_benchmarks_synthesise(self):
        for name in ("RING", "CF-SYM-A-CSC"):
            stg = TABLE1_BENCHMARKS[name]()
            result = synthesise(stg)
            assert result.verify(build_state_graph(stg))


class TestResolution:
    def test_vme_resolution_single_signal(self, vme):
        resolution = resolve_csc(vme)
        assert len(resolution.insertions) == 1
        assert check_csc(resolution.stg).holds
        # the resolved STG stays consistent and synthesisable
        result = synthesise(resolution.stg)
        assert result.verify(build_state_graph(resolution.stg))

    def test_already_clean_is_noop(self, vme_csc):
        resolution = resolve_csc(vme_csc)
        assert resolution.insertions == []
        assert resolution.stg is vme_csc

    def test_duplex_resolution(self):
        stg = TABLE1_BENCHMARKS["DUP-4PH-A"]()
        resolution = resolve_csc(stg)
        assert check_csc(resolution.stg).holds
        assert resolution.describe()

    def test_inserted_signal_is_internal(self, vme):
        resolution = resolve_csc(vme)
        signal = resolution.insertions[0][0]
        assert signal in resolution.stg.internal

    def test_budget_exhaustion_raises(self, vme):
        with pytest.raises(ReproError):
            resolve_csc(vme, max_signals=0)
