"""Unit and property tests for cubes, covers and Quine-McCluskey."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthesis.boolean import (
    Cover,
    Cube,
    cover_from_minterms,
    minimise,
    prime_implicants,
)


class TestCube:
    def test_from_minterm(self):
        c = Cube.from_minterm(0b101, 3)
        assert c.contains(0b101)
        assert not c.contains(0b111)

    def test_values_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            Cube(0b01, 0b10)

    def test_merge_adjacent(self):
        a = Cube.from_minterm(0b00, 2)
        b = Cube.from_minterm(0b01, 2)
        merged = a.merge(b)
        assert merged is not None
        assert merged.contains(0b00) and merged.contains(0b01)
        assert not merged.contains(0b10)

    def test_merge_non_adjacent(self):
        a = Cube.from_minterm(0b00, 2)
        b = Cube.from_minterm(0b11, 2)
        assert a.merge(b) is None

    def test_merge_different_masks(self):
        assert Cube(0b11, 0b00).merge(Cube(0b01, 0b01)) is None

    def test_covers_cube(self):
        big = Cube(0b01, 0b01)      # x0
        small = Cube(0b11, 0b01)    # x0 & !x1
        assert big.covers_cube(small)
        assert not small.covers_cube(big)

    def test_to_string(self):
        names = ["a", "b"]
        assert Cube(0b11, 0b01).to_string(names) == "a b'"
        assert Cube(0, 0).to_string(names) == "1"


class TestMinimise:
    def test_full_function(self):
        cover = minimise({0, 1, 2, 3}, set(), 2)
        assert len(cover) == 1
        assert cover.cubes[0].mask == 0

    def test_empty_function(self):
        cover = minimise(set(), set(), 3)
        assert len(cover) == 0
        assert not cover.evaluate(0)

    def test_classic_example(self):
        """f = sum m(0,1,2,5,6,7) over 3 vars (a classic QM exercise)."""
        cover = minimise({0, 1, 2, 5, 6, 7}, set(), 3)
        for m in range(8):
            assert cover.evaluate(m) == (m in {0, 1, 2, 5, 6, 7})
        assert len(cover) <= 3

    def test_dont_cares_simplify(self):
        # on {1}, dc {3}: x0 alone suffices instead of x0 & !x1
        cover = minimise({0b01}, {0b11}, 2)
        assert len(cover) == 1
        assert cover.cubes[0].mask.bit_count() == 1

    def test_xor_needs_two_cubes(self):
        cover = minimise({0b01, 0b10}, set(), 2)
        assert len(cover) == 2

    @settings(max_examples=120, deadline=None)
    @given(
        st.sets(st.integers(0, 15)),
        st.sets(st.integers(0, 15)),
    )
    def test_correctness_property(self, on, dc):
        dc = dc - on
        cover = minimise(on, dc, 4)
        for m in range(16):
            if m in on:
                assert cover.evaluate(m), f"on-set minterm {m} not covered"
            elif m not in dc:
                assert not cover.evaluate(m), f"off-set minterm {m} covered"

    @settings(max_examples=60, deadline=None)
    @given(st.sets(st.integers(0, 15), min_size=1))
    def test_never_larger_than_trivial_cover(self, on):
        cover = minimise(on, set(), 4)
        trivial = cover_from_minterms(on, 4)
        assert cover.literal_count() <= trivial.literal_count()


class TestPrimes:
    def test_primes_are_maximal(self):
        on = {0, 1, 2, 5, 6, 7}
        primes = prime_implicants(on, set(), 3)
        for p in primes:
            # expanding any cared literal must leave the on-set
            for v in range(3):
                if not (p.mask >> v) & 1:
                    continue
                expanded = Cube(p.mask & ~(1 << v), p.values & ~(1 << v))
                minterms = [
                    m for m in range(8) if expanded.contains(m)
                ]
                assert any(m not in on for m in minterms)


class TestCoverQueries:
    def test_unateness(self):
        names = 2
        pos = Cover([Cube(0b01, 0b01), Cube(0b10, 0b10)], names)  # a + b
        assert pos.is_unate()
        assert pos.is_positive_unate()
        mixed = Cover([Cube(0b01, 0b01), Cube(0b01, 0b00)], names)  # a + a'
        assert not mixed.is_unate()

    def test_variables_used(self):
        cover = Cover([Cube(0b101, 0b001)], 3)
        assert cover.variables_used() == {0, 2}

    def test_to_string(self):
        cover = Cover([Cube(0b11, 0b01), Cube(0b10, 0b10)], 2)
        assert cover.to_string(["a", "b"]) == "a b' + b"
        assert Cover([], 2).to_string(["a", "b"]) == "0"
