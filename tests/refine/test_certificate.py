"""Certificate replay under tampering: every forgery must be rejected.

The CEGAR prescreen is only allowed to refute when
:func:`repro.refine.verify_certificate` replays its certificate with exact
arithmetic, so these tests pin both directions: a genuine refutation of a
Table-1 conflict-free instance replays cleanly, and every class of
tampering — mutated cuts, forged or deleted dual multipliers, wrong
dimensions — breaks the replay.
"""

import copy
from fractions import Fraction

import pytest

from repro.core.context import SolverContext
from repro.models import TABLE1_BENCHMARKS
from repro.refine import (
    CUT_TRAP,
    Cut,
    DualBound,
    RefinementCertificate,
    check_dual_bound,
    refine_prescreen,
    verify_certificate,
    verify_cut,
)
from repro.unfolding import unfold


@pytest.fixture(scope="module")
def refutation():
    """A real refutation: context + verified certificate for CF-SYM-A-CSC."""
    pytest.importorskip("scipy")
    context = SolverContext(unfold(TABLE1_BENCHMARKS["CF-SYM-A-CSC"]()))
    outcome = refine_prescreen(context)
    assert outcome.refuted, outcome.reason
    return context, outcome.certificate


class TestGenuineCertificate:
    def test_replays(self, refutation):
        context, certificate = refutation
        assert verify_certificate(context, certificate)

    def test_covers_every_direction_of_every_flowing_place(self, refutation):
        _, certificate = refutation
        pairs = {(b.place, b.sign) for b in certificate.bounds}
        assert all(sign in (1, -1) for _, sign in pairs)
        assert len(pairs) == len(certificate.bounds)  # no duplicates

    def test_survives_serialisation(self, refutation):
        context, certificate = refutation
        rebuilt = RefinementCertificate.from_dict(certificate.to_dict())
        assert verify_certificate(context, rebuilt)

    def test_unknown_version_rejected(self, refutation):
        _, certificate = refutation
        payload = certificate.to_dict()
        payload["version"] = 99
        with pytest.raises(ValueError, match="unsupported certificate"):
            RefinementCertificate.from_dict(payload)


def _copy(certificate: RefinementCertificate) -> RefinementCertificate:
    return RefinementCertificate.from_dict(
        copy.deepcopy(certificate.to_dict())
    )


class TestTampering:
    def test_bogus_cut_rejected(self, refutation):
        context, certificate = refutation
        forged = _copy(certificate)
        forged.cuts.append(
            Cut(kind=CUT_TRAP, places=("no-such-place",), marked=True)
        )
        assert not verify_certificate(context, forged)

    def test_mutated_cut_places_rejected(self, refutation):
        context, certificate = refutation
        net = context.prefix.net
        # a real place name whose singleton is demonstrably not a marked trap
        bad = next(
            net.place_name(p)
            for p in range(net.num_places)
            if not verify_cut(
                net,
                Cut(kind=CUT_TRAP, places=(net.place_name(p),), marked=True),
            )
        )
        forged = _copy(certificate)
        forged.cuts.append(Cut(kind=CUT_TRAP, places=(bad,), marked=True))
        assert not verify_certificate(context, forged)

    def test_deleted_bound_breaks_coverage(self, refutation):
        context, certificate = refutation
        forged = _copy(certificate)
        forged.bounds.pop()
        assert not verify_certificate(context, forged)

    def test_forged_empty_multipliers_rejected(self, refutation):
        context, certificate = refutation
        forged = _copy(certificate)
        victim = forged.bounds[0]
        forged.bounds[0] = DualBound(
            place=victim.place, sign=victim.sign, y_eq={}, y_ub={}
        )
        assert not verify_certificate(context, forged)

    def test_negative_multiplier_rejected(self, refutation):
        context, certificate = refutation
        forged = _copy(certificate)
        victim = forged.bounds[0]
        y_ub = dict(victim.y_ub)
        y_ub[0] = Fraction(-1)
        forged.bounds[0] = DualBound(
            place=victim.place, sign=victim.sign, y_eq=victim.y_eq, y_ub=y_ub
        )
        assert not verify_certificate(context, forged)

    def test_wrong_dimensions_rejected(self, refutation):
        context, certificate = refutation
        forged = _copy(certificate)
        forged.num_vars += 1
        assert not verify_certificate(context, forged)

    def test_wrong_sign_rejected(self, refutation):
        context, certificate = refutation
        forged = _copy(certificate)
        victim = forged.bounds[0]
        forged.bounds[0] = DualBound(
            place=victim.place, sign=2, y_eq=victim.y_eq, y_ub=victim.y_ub
        )
        assert not verify_certificate(context, forged)


class TestCheckDualBound:
    # maximise x0 subject to x0 + x1 == 1/2, x >= 0
    EQ = [([1, 1], Fraction(1, 2))]

    def test_valid_witness_returns_bound(self):
        bound = check_dual_bound([1, 0], self.EQ, [], {0: Fraction(1)}, {})
        assert bound == Fraction(1, 2)

    def test_dominated_coordinate_fails(self):
        assert check_dual_bound([1, 0], self.EQ, [], {}, {}) is None

    def test_negative_inequality_multiplier_fails(self):
        ub = [([1, 0], 1)]
        assert (
            check_dual_bound([1, 0], [], ub, {}, {0: Fraction(-1)}) is None
        )

    def test_out_of_range_rows_fail(self):
        assert check_dual_bound([1], self.EQ, [], {5: Fraction(1)}, {}) is None
        assert check_dual_bound([1], [], [], {}, {0: Fraction(1)}) is None
