"""Exact replay of trap/siphon cuts (the refinement loop's soundness gate)."""

import numpy as np
import pytest

from repro.petri.net import PetriNet
from repro.refine.cuts import CUT_SIPHON, CUT_TRAP, Cut, cut_row, verify_cut


def chain_net() -> PetriNet:
    """``p0 (1 token) --t--> p1`` plus an isolated unmarked place ``s``."""
    net = PetriNet("chain")
    net.add_place("p0", tokens=1)
    net.add_place("p1")
    net.add_place("s")
    net.add_transition("t")
    net.add_arc("p0", "t")
    net.add_arc("t", "p1")
    return net


class TestVerifyCut:
    def test_marked_trap_accepted(self):
        cut = Cut(kind=CUT_TRAP, places=("p0", "p1"), marked=True)
        assert verify_cut(chain_net(), cut)

    def test_leaky_set_is_no_trap(self):
        # t consumes from p0 but produces only into p1 (outside the set)
        cut = Cut(kind=CUT_TRAP, places=("p0",), marked=True)
        assert not verify_cut(chain_net(), cut)

    def test_trap_must_claim_and_be_marked(self):
        net = chain_net()
        assert not verify_cut(
            net, Cut(kind=CUT_TRAP, places=("p0", "p1"), marked=False)
        )
        # a genuine but unmarked trap yields no >= 1 inequality
        net.set_tokens("p0", 0)
        assert not verify_cut(
            net, Cut(kind=CUT_TRAP, places=("p0", "p1"), marked=True)
        )

    def test_unmarked_siphon_accepted(self):
        cut = Cut(kind=CUT_SIPHON, places=("s",), marked=False)
        assert verify_cut(chain_net(), cut)

    def test_fed_place_is_no_siphon(self):
        # p1's producer t is fed from p0, which is outside the set
        cut = Cut(kind=CUT_SIPHON, places=("p1",), marked=False)
        assert not verify_cut(chain_net(), cut)

    def test_marked_siphon_rejected(self):
        cut = Cut(kind=CUT_SIPHON, places=("p0",), marked=False)
        assert not verify_cut(chain_net(), cut)

    @pytest.mark.parametrize(
        "cut",
        [
            Cut(kind="lasso", places=("p0",), marked=True),
            Cut(kind=CUT_TRAP, places=(), marked=True),
            Cut(kind=CUT_TRAP, places=("nope",), marked=True),
            Cut(kind=CUT_TRAP, places=("p0", "p0"), marked=True),
        ],
    )
    def test_malformed_cuts_rejected(self, cut):
        assert not verify_cut(chain_net(), cut)


class TestCutRow:
    def test_trap_row_sums_member_flows(self):
        net = chain_net()
        flow = np.array([[1, -1], [0, 1], [0, 0]])
        cut = Cut(kind=CUT_TRAP, places=("p0", "p1"), marked=True)
        coeffs, sense, rhs = cut_row(cut, net, flow, 2)
        assert (coeffs, sense, rhs) == ([1, 0], ">=", 0)  # 1 - M0(S) = 0

    def test_siphon_row_is_an_equality(self):
        net = chain_net()
        flow = np.array([[1, -1], [0, 1], [2, 0]])
        cut = Cut(kind=CUT_SIPHON, places=("s",), marked=False)
        coeffs, sense, rhs = cut_row(cut, net, flow, 2)
        assert (coeffs, sense, rhs) == ([2, 0], "==", 0)


class TestSerialisation:
    def test_roundtrip(self):
        cut = Cut(kind=CUT_TRAP, places=("a", "b"), marked=True)
        assert Cut.from_dict(cut.to_dict()) == cut

    def test_unknown_version_rejected(self):
        payload = Cut(kind=CUT_TRAP, places=("a",), marked=True).to_dict()
        payload["version"] = 99
        with pytest.raises(ValueError, match="unsupported cut version"):
            Cut.from_dict(payload)
