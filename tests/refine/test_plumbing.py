"""use_refinement plumbing: jobs, serve protocol, CLI, obs and the bench axis."""

import importlib.util
from pathlib import Path

import pytest

from repro.cli import main
from repro.engine.jobs import VerificationJob
from repro.models import vme_bus
from repro.obs.tracer import PHASE_PREFIXES
from repro.serve.protocol import SCHEMA, ProtocolError, parse_check_request

_HARNESS_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "harness.py"
)
_spec = importlib.util.spec_from_file_location("bench_harness", _HARNESS_PATH)
harness = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(harness)


class TestJobIdentity:
    def test_cache_identity_excludes_use_refinement(self):
        stg = vme_bus()
        plain = VerificationJob(stg=stg, property="csc")
        refined = VerificationJob(stg=stg, property="csc", use_refinement=True)
        assert plain.cache_fields() == refined.cache_fields()


class TestServeProtocol:
    def test_flag_reaches_the_jobs(self):
        request = parse_check_request(
            {"schema": SCHEMA, "model": "RING", "use_refinement": True}
        )
        assert all(job.use_refinement for job in request.jobs())
        bare = parse_check_request({"schema": SCHEMA, "model": "RING"})
        assert not any(job.use_refinement for job in bare.jobs())

    def test_dedup_key_tracks_the_flag(self):
        base = parse_check_request({"schema": SCHEMA, "model": "RING"})
        refined = parse_check_request(
            {"schema": SCHEMA, "model": "RING", "use_refinement": True}
        )
        assert base.dedup_key() != refined.dedup_key()

    def test_non_boolean_flag_rejected(self):
        with pytest.raises(ProtocolError, match="use_refinement"):
            parse_check_request(
                {"schema": SCHEMA, "model": "RING", "use_refinement": "yes"}
            )


class TestObsAndProfile:
    def test_refine_is_a_canonical_phase(self):
        assert "refine" in PHASE_PREFIXES
        assert PHASE_PREFIXES["refine"] == ("refine.",)

    def test_profile_row_appears_with_flag(self, capsys):
        pytest.importorskip("scipy")
        assert main(["profile", "CF-SYM-A-CSC", "--refine"]) == 0
        out = capsys.readouterr().out
        assert "refine" in out
        assert "refine.refuted" in out

    def test_profile_row_absent_without_flag(self, capsys):
        assert main(["profile", "RING"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert not any(line.strip().startswith("refine") for line in lines)


class TestBenchAxis:
    def test_case_id_suffix_and_with_refine(self):
        case = harness.Case("token-ring", 4, "usc")
        assert case.case_id == "token-ring/n=4/usc"
        refined = case.with_refine(True)
        assert refined.case_id == "token-ring/n=4/usc/r=1"
        assert refined.with_facts(True).case_id == "token-ring/n=4/usc/f=1/r=1"
        assert refined.refine and not case.refine

    def test_run_suite_expands_the_axis(self, monkeypatch):
        seen = []

        def fake_measure(case, warmup, repeat):
            seen.append(case.case_id)
            return {
                "id": case.case_id,
                "family": case.family,
                "size": case.size,
                "property": case.prop,
                "workers": case.workers,
                "facts": case.facts,
                "refine": case.refine,
                "holds": True,
                "repeats": repeat,
                "median_s": 0.001,
                "min_s": 0.001,
                "max_s": 0.001,
                "phases": {},
                "counters": {},
            }

        monkeypatch.setattr(harness, "measure_case", fake_measure)
        report = harness.run_suite(
            quick=True, families=["token-ring"], refine=(0, 1)
        )
        harness.validate_report(report)
        assert seen == ["token-ring/n=4/usc", "token-ring/n=4/usc/r=1"]

    def test_validate_report_rejects_bad_refine_field(self):
        record = {
            "id": "x",
            "family": "x",
            "size": 1,
            "property": "usc",
            "workers": 0,
            "refine": "yes",
            "holds": True,
            "repeats": 1,
            "median_s": 0.0,
            "min_s": 0.0,
            "max_s": 0.0,
            "phases": {},
            "counters": {},
        }
        data = {
            "schema": harness.BENCH_SCHEMA,
            "generated": "now",
            "config": {},
            "env": {"python": "3", "cpu_count": 1},
            "results": [record],
        }
        with pytest.raises(ValueError, match="invalid refine field"):
            harness.validate_report(data)
