"""In-search movability tightening: streams only lose equal-marking pairs.

``use_refinement=`` on a non-refuted instance hands the searches the
certified-immovable places.  The window stream must be byte-identical (the
pruned subtrees contain no marking-changing windows at all); the nested
pair stream may only drop pairs whose final markings are equal — exactly
the candidates the USC/CSC checkers skip without counting.
"""

import pytest

from repro.core.context import SolverContext
from repro.core.prescreen import _flow_matrix
from repro.core.search import PairSearch
from repro.core.window import WindowSearch
from repro.models import TABLE1_BENCHMARKS
from repro.refine import refine_prescreen
from repro.unfolding import unfold

pytest.importorskip("scipy")


@pytest.fixture(scope="module", params=["RING", "LAZYRING"])
def tightened(request):
    context = SolverContext(unfold(TABLE1_BENCHMARKS[request.param]()))
    outcome = refine_prescreen(context)
    assert not outcome.refuted  # conflicting models fall through
    return context, outcome.movable_places


def test_window_stream_identical(tightened):
    context, movable = tightened
    plain = WindowSearch(context)
    tight = WindowSearch(context, movable_places=movable)
    assert list(tight.solutions()) == list(plain.solutions())
    assert tight.stats.nodes <= plain.stats.nodes


def _marking(context, flow, mask):
    initial = context.prefix.net.initial_marking
    marking = [int(tokens) for tokens in initial]
    for i in range(context.num_vars):
        if mask >> i & 1:
            for p in range(len(marking)):
                marking[p] += int(flow[p][i])
    return tuple(marking)


def test_pair_stream_drops_only_equal_marking_pairs(tightened):
    context, movable = tightened
    plain = PairSearch(context, nested_only=True)
    tight = PairSearch(context, nested_only=True, movable_places=movable)
    plain_solutions = list(plain.solutions())
    tight_solutions = set(tight.solutions())
    assert tight_solutions <= set(plain_solutions)
    flow = _flow_matrix(context)
    for ones_a, ones_b in plain_solutions:
        if (ones_a, ones_b) in tight_solutions:
            continue
        assert _marking(context, flow, ones_a) == _marking(
            context, flow, ones_b
        )


def test_pruning_counted_into_stats(tightened):
    context, movable = tightened
    tight = PairSearch(context, nested_only=True, movable_places=movable)
    list(tight.solutions())
    plain = PairSearch(context, nested_only=True)
    list(plain.solutions())
    assert tight.stats.pruned_structure >= plain.stats.pruned_structure
