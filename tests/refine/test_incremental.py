"""Byte-identity of the incremental sweep, reference path and cert cache.

The incremental engine (shared solver model, dominance tier, sign-convention
memory, certificate cache) is a pure performance layer: for every model the
emitted certificate must serialise to exactly the same bytes as the
from-scratch reference path (``incremental=False``), and a warm run replaying
cached certificates must reproduce the cold run verbatim.  Tampered cache
material must be re-solved, never trusted — with the final result still
byte-identical.
"""

import json

import pytest

from repro.core.context import SolverContext
from repro.engine.cache import ResultCache
from repro.models import TABLE1_BENCHMARKS
from repro.models.ring import lazy_ring, token_ring
from repro.models.scalable import muller_pipeline
from repro.refine import cut_set_hash, refine_prescreen, verify_cut
from repro.refine.cuts import Cut
from repro.unfolding import unfold

pytest.importorskip("scipy")


def _context(stg):
    return SolverContext(unfold(stg))


def _fingerprint(outcome):
    """Everything observable: verdict, movability, certificate bytes."""
    certificate = outcome.certificate
    return (
        outcome.refuted,
        tuple(outcome.movable_places),
        tuple(cut.to_dict().items() for cut in outcome.cuts),
        None
        if certificate is None
        else json.dumps(certificate.to_dict(), sort_keys=True),
    )


class TestIncrementalMatchesReference:
    @pytest.mark.parametrize("name", sorted(TABLE1_BENCHMARKS))
    def test_table1_models(self, name):
        stg = TABLE1_BENCHMARKS[name]()
        incremental = refine_prescreen(_context(stg), incremental=True)
        reference = refine_prescreen(_context(stg), incremental=False)
        assert _fingerprint(incremental) == _fingerprint(reference)

    @pytest.mark.parametrize(
        "build", [lambda: muller_pipeline(4), lambda: token_ring(4),
                  lambda: lazy_ring(2)],
        ids=["muller-4", "token-ring-4", "vme-2"],
    )
    def test_scalable_families(self, build):
        incremental = refine_prescreen(_context(build()), incremental=True)
        reference = refine_prescreen(_context(build()), incremental=False)
        assert _fingerprint(incremental) == _fingerprint(reference)


class TestCertificateCache:
    @pytest.fixture()
    def store(self, tmp_path):
        return ResultCache(tmp_path / "cache")

    def _cold(self, store, name="CF-SYM-A-CSC"):
        stg = TABLE1_BENCHMARKS[name]()
        outcome = refine_prescreen(_context(stg), cert_store=store)
        assert outcome.refuted
        return stg, outcome

    def test_warm_run_replays_byte_identically(self, store):
        stg, cold = self._cold(store)
        warm = refine_prescreen(_context(stg), cert_store=store)
        assert _fingerprint(warm) == _fingerprint(cold)
        assert warm.cert_cache_hits > 0
        assert warm.lp_calls == 0  # every objective came from the store

    def test_warm_reference_path_matches_too(self, store):
        stg, cold = self._cold(store)
        warm = refine_prescreen(
            _context(stg), cert_store=store, incremental=False
        )
        assert _fingerprint(warm) == _fingerprint(cold)
        assert warm.cert_cache_hits > 0

    def _tamper_certs(self, store):
        """Corrupt the bound of every stored refine-cert entry."""
        tampered = 0
        for path in store._entries():
            payload = json.loads(path.read_text())
            if payload.get("domain") != "refine-cert":
                continue
            payload["body"]["bound"]["y_eq"] = {}
            payload["body"]["bound"]["y_ub"] = {}
            path.write_text(json.dumps(payload))
            tampered += 1
        return tampered

    def test_tampered_cert_is_resolved_not_trusted(self, store):
        stg, cold = self._cold(store)
        assert self._tamper_certs(store) > 0
        warm = refine_prescreen(_context(stg), cert_store=store)
        assert _fingerprint(warm) == _fingerprint(cold)
        assert warm.cert_cache_hits == 0  # nothing replayed
        assert warm.lp_calls == cold.lp_calls  # everything re-solved

    def test_corrupted_cut_log_is_dropped_not_trusted(self, store):
        stg, cold = self._cold(store)
        stg_hash = stg.content_hash()
        bogus = Cut(kind="trap", places=("no-such-place",), marked=True)
        store.put_refine_cuts(stg_hash, [bogus.to_dict()])
        warm = refine_prescreen(_context(stg), cert_store=store)
        assert _fingerprint(warm) == _fingerprint(cold)
        assert not warm.cuts  # the forged log entry was never replayed

    def test_cached_bound_replays_log_cuts_first(self, store):
        """A cert certified under a deeper cut state re-applies the missing
        log cuts (exact-verified) before its bound is re-checked."""
        from repro.analysis import analyze
        from repro.analysis.facts import FACT_TRAP
        from repro.refine.cuts import CUT_TRAP

        stg, cold = self._cold(store)
        stg_hash = stg.content_hash()
        context = _context(stg)
        # a genuine marked trap of the unfolded net makes a verifiable cut
        from repro.refine.relaxation import build_relaxation

        net = build_relaxation(context).net
        trap_fact = next(
            fact
            for fact in analyze(stg).of_kind(FACT_TRAP)
            if fact.justification.get("marked")
            and all(
                place in net._place_index
                for place in fact.justification["places"]
            )
        )
        cut = Cut(
            kind=CUT_TRAP,
            places=tuple(sorted(trap_fact.justification["places"])),
            marked=True,
        )
        assert verify_cut(net, cut)
        store.put_refine_cuts(stg_hash, [cut.to_dict()])
        # rewrite one stored cert to claim it was certified after that cut
        rewritten = 0
        for path in store._entries():
            payload = json.loads(path.read_text())
            if payload.get("domain") != "refine-cert":
                continue
            payload["body"]["cuts_after"] = 1
            payload["body"]["cuts_referenced"] = True
            payload["cuts_referenced"] = True
            path.write_text(json.dumps(payload))
            rewritten += 1
            break
        assert rewritten == 1
        warm = refine_prescreen(_context(stg), cert_store=store)
        # the extension cut was replayed before the (still valid) bound
        assert warm.refuted
        assert cut in warm.cuts
        assert warm.cert_cache_hits > 0

    def test_distinct_objectives_get_distinct_entries(self, store):
        _, cold = self._cold(store)
        certs = sum(
            1
            for path in store._entries()
            if json.loads(path.read_text()).get("domain") == "refine-cert"
        )
        # one entry per certified (place, sign) objective — dominated
        # objectives reuse their twin's entry and store nothing
        assert certs == len(cold.certificate.bounds) - cold.dominated

    def test_cut_set_hash_is_order_sensitive(self):
        a = Cut(kind="trap", places=("p", "q"), marked=True)
        b = Cut(kind="siphon", places=("r",), marked=False)
        assert cut_set_hash([a, b]) != cut_set_hash([b, a])
        assert cut_set_hash([]) == cut_set_hash([])
