"""The two separation tiers: FactBase scan and the exact separation LPs."""

from repro.analysis.facts import FACT_SIPHON, FACT_TRAP
from repro.petri.net import PetriNet
from repro.refine.cuts import CUT_SIPHON, CUT_TRAP, verify_cut
from repro.refine.separation import (
    find_cut,
    separate_siphon,
    separate_trap,
    violated_fact_cut,
)


def chain_net() -> PetriNet:
    net = PetriNet("chain")
    net.add_place("p0", tokens=1)
    net.add_place("p1")
    net.add_transition("t")
    net.add_arc("p0", "t")
    net.add_arc("t", "p1")
    return net


def loop_net() -> PetriNet:
    """One unmarked place on a self-loop: a genuine empty siphon."""
    net = PetriNet("loop")
    net.add_place("q")
    net.add_transition("u")
    net.add_arc("q", "u")
    net.add_arc("u", "q")
    return net


class _StubFact:
    def __init__(self, places, marked):
        self.justification = {"places": list(places), "marked": marked}


class _StubFactBase:
    def __init__(self, traps=(), siphons=()):
        self._by_kind = {FACT_TRAP: list(traps), FACT_SIPHON: list(siphons)}

    def of_kind(self, kind):
        return self._by_kind.get(kind, [])


class TestFactTier:
    def test_emptied_trap_yields_cut(self):
        facts = _StubFactBase(traps=[_StubFact(["p0", "p1"], marked=True)])
        cut = violated_fact_cut(facts, chain_net(), [0, 0])
        assert cut is not None
        assert (cut.kind, cut.places) == (CUT_TRAP, ("p0", "p1"))

    def test_satisfied_trap_yields_nothing(self):
        facts = _StubFactBase(traps=[_StubFact(["p0", "p1"], marked=True)])
        assert violated_fact_cut(facts, chain_net(), [1, 0]) is None

    def test_unmarked_trap_fact_skipped(self):
        facts = _StubFactBase(traps=[_StubFact(["p0", "p1"], marked=False)])
        assert violated_fact_cut(facts, chain_net(), [0, 0]) is None

    def test_filled_siphon_yields_cut(self):
        facts = _StubFactBase(siphons=[_StubFact(["q"], marked=False)])
        cut = violated_fact_cut(facts, loop_net(), [1])
        assert cut is not None
        assert (cut.kind, cut.places) == (CUT_SIPHON, ("q",))

    def test_stranger_places_tolerated(self):
        facts = _StubFactBase(traps=[_StubFact(["elsewhere"], marked=True)])
        assert violated_fact_cut(facts, chain_net(), [0, 0]) is None


class TestLpTier:
    def test_trap_separated_from_tokenless_marking(self):
        net = chain_net()
        cut = separate_trap(net, [0, 0])
        assert cut is not None
        assert cut.places == ("p0", "p1")
        assert verify_cut(net, cut)

    def test_no_trap_cut_when_inequality_satisfied(self):
        assert separate_trap(chain_net(), [1, 0]) is None

    def test_siphon_separated_from_filled_marking(self):
        net = loop_net()
        cut = separate_siphon(net, [1])
        assert cut is not None
        assert cut.places == ("q",)
        assert verify_cut(net, cut)

    def test_no_siphon_cut_when_empty(self):
        assert separate_siphon(loop_net(), [0]) is None


class TestFindCut:
    def test_facts_tier_runs_first(self):
        facts = _StubFactBase(traps=[_StubFact(["p0", "p1"], marked=True)])
        cut = find_cut(chain_net(), [[0, 0]], facts, use_lp=False)
        assert cut is not None and cut.kind == CUT_TRAP

    def test_lp_disabled_means_no_cut_without_facts(self):
        assert find_cut(chain_net(), [[0, 0]], None, use_lp=False) is None

    def test_lp_fallback_finds_the_trap(self):
        cut = find_cut(chain_net(), [[1, 0], [0, 0]], None, use_lp=True)
        assert cut is not None and cut.kind == CUT_TRAP
