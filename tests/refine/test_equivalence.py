"""Golden equivalence: use_refinement must never change a verdict or witness.

Same contract (and same fingerprint) as tests/analysis/test_equivalence.py:
the CEGAR prescreen either refutes the conflict system outright — returning
the same "holds" verdict the search would have produced, with zero search
nodes — or hands the search a movability classification that only removes
equal-marking candidates the checkers discard anyway.  Either way verdicts,
witnesses and USC-only candidate counts are byte-identical.
"""

import pytest

from repro.core.search import SearchStats
from repro.core.verifier import check_csc, check_usc
from repro.models import TABLE1_BENCHMARKS

pytest.importorskip("scipy")

FAST_MODELS = [
    name
    for name in TABLE1_BENCHMARKS
    if name not in ("CF-SYM-D-CSC", "CF-ASYM-B-CSC")
]


def _fingerprint(result):
    witness = result.witness
    return (
        result.holds,
        result.usc_only_candidates,
        None
        if witness is None
        else (
            witness.kind,
            witness.code_a,
            witness.code_b,
            tuple(witness.trace_a),
            tuple(witness.trace_b),
        ),
    )


@pytest.mark.parametrize("name", FAST_MODELS)
def test_usc_verdicts_identical(name):
    stg = TABLE1_BENCHMARKS[name]()
    plain = check_usc(stg)
    refined = check_usc(stg, use_refinement=True)
    assert _fingerprint(refined) == _fingerprint(plain)


@pytest.mark.parametrize("name", FAST_MODELS)
def test_csc_verdicts_identical(name):
    stg = TABLE1_BENCHMARKS[name]()
    plain = check_csc(stg)
    refined = check_csc(stg, use_refinement=True)
    assert _fingerprint(refined) == _fingerprint(plain)


@pytest.mark.parametrize("name", ["CF-SYM-A-CSC", "CF-SYM-B-CSC"])
def test_refutation_skips_the_search_entirely(name):
    stg = TABLE1_BENCHMARKS[name]()
    report = check_csc(stg, use_refinement=True)
    assert report.holds
    assert report.witness is None
    assert report.search_stats == SearchStats()


def test_conflicting_model_still_finds_its_witness():
    stg = TABLE1_BENCHMARKS["RING"]()
    report = check_usc(stg, use_refinement=True)
    assert not report.holds
    assert report.witness is not None
