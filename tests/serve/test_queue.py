"""Tests for the bounded admission queue: backpressure, draining, EWMA."""

import threading

import pytest

from repro.serve.queue import AdmissionQueue, QueueClosed


class TestAdmission:
    def test_fifo_order(self):
        queue = AdmissionQueue(limit=4)
        for item in "abcd":
            assert queue.offer(item) is True
        assert [queue.take(timeout=0.1) for _ in range(4)] == list("abcd")

    def test_offer_refused_when_full(self):
        queue = AdmissionQueue(limit=2)
        assert queue.offer(1) and queue.offer(2)
        assert queue.offer(3) is False
        stats = queue.stats()
        assert stats["rejected"] == 1
        assert stats["accepted"] == 2
        assert stats["depth"] == 2
        # taking one makes room again
        assert queue.take(timeout=0.1) == 1
        assert queue.offer(3) is True

    def test_high_water_mark(self):
        queue = AdmissionQueue(limit=8)
        for item in range(5):
            queue.offer(item)
        for _ in range(5):
            queue.take(timeout=0.1)
        queue.offer("x")
        assert queue.stats()["high_water"] == 5

    def test_take_timeout_returns_none(self):
        queue = AdmissionQueue(limit=1)
        assert queue.take(timeout=0.05) is None

    def test_take_wakes_on_offer(self):
        queue = AdmissionQueue(limit=1)
        got = []

        def consumer():
            got.append(queue.take(timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        queue.offer("wake")
        thread.join(timeout=5.0)
        assert got == ["wake"]

    def test_drain_batch_is_non_blocking(self):
        queue = AdmissionQueue(limit=8)
        for item in range(5):
            queue.offer(item)
        assert queue.drain_batch(3) == [0, 1, 2]
        assert queue.drain_batch(10) == [3, 4]
        assert queue.drain_batch(10) == []


class TestClose:
    def test_offer_after_close_raises(self):
        queue = AdmissionQueue(limit=2)
        queue.close()
        assert queue.closed
        with pytest.raises(QueueClosed):
            queue.offer("late")

    def test_close_drains_backlog_then_returns_none(self):
        queue = AdmissionQueue(limit=4)
        queue.offer("a")
        queue.offer("b")
        queue.close()
        # backlog is still served after close — drain semantics
        assert queue.take(timeout=0.1) == "a"
        assert queue.take(timeout=0.1) == "b"
        assert queue.take(timeout=0.1) is None

    def test_close_wakes_blocked_taker(self):
        queue = AdmissionQueue(limit=1)
        got = []

        def consumer():
            got.append(queue.take(timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert got == [None]

    def test_clear_returns_pending(self):
        queue = AdmissionQueue(limit=4)
        queue.offer("a")
        queue.offer("b")
        assert queue.clear() == ["a", "b"]
        assert queue.depth == 0


class TestRetryAfter:
    def test_default_hint_is_one_second(self):
        assert AdmissionQueue(limit=1).retry_after() == 1

    def test_hint_tracks_service_time_ewma(self):
        queue = AdmissionQueue(limit=1)
        for _ in range(20):
            queue.note_service_time(4.0)
        assert queue.retry_after() == 4
        # hint is ceil()ed and never below 1
        fast = AdmissionQueue(limit=1)
        fast.note_service_time(0.01)
        assert fast.retry_after() == 1

    def test_ewma_converges_toward_recent_samples(self):
        queue = AdmissionQueue(limit=1)
        queue.note_service_time(10.0)
        for _ in range(30):
            queue.note_service_time(1.0)
        assert queue.retry_after() <= 2


class TestConcurrency:
    def test_many_producers_one_consumer_no_loss_past_capacity(self):
        queue = AdmissionQueue(limit=16)
        accepted = []
        lock = threading.Lock()

        def producer(base):
            for i in range(50):
                item = base * 1000 + i
                if queue.offer(item):
                    with lock:
                        accepted.append(item)

        threads = [threading.Thread(target=producer, args=(n,)) for n in range(4)]
        consumed = []

        def consumer():
            while True:
                item = queue.take(timeout=0.5)
                if item is None:
                    break
                consumed.append(item)

        eater = threading.Thread(target=consumer)
        eater.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        queue.close()
        eater.join(timeout=10.0)
        # every accepted offer is consumed exactly once, in spite of races
        assert sorted(consumed) == sorted(accepted)
        stats = queue.stats()
        assert stats["accepted"] == len(accepted)
        assert stats["offered"] == 200
