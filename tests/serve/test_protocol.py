"""Tests for the repro-serve/1 wire schemas and the canonical JSON STG form."""

import pytest

from repro.models import TABLE1_BENCHMARKS, vme_bus
from repro.serve.protocol import (
    SCHEMA,
    ProtocolError,
    envelope,
    error_payload,
    exit_code_for,
    parse_check_request,
    result_to_dict,
    stg_from_json,
    stg_to_json,
)
from repro.engine.jobs import JobResult, execute_engine, VerificationJob
from repro.stg.parser import write_stg
from repro.stg.stg import STG, SignalEdge


class TestJsonStg:
    @pytest.mark.parametrize("name", sorted(TABLE1_BENCHMARKS))
    def test_roundtrip_preserves_content_hash(self, name):
        stg = TABLE1_BENCHMARKS[name]()
        rebuilt = stg_from_json(stg_to_json(stg))
        assert rebuilt.content_hash() == stg.content_hash()
        assert rebuilt.name == stg.name

    def test_roundtrip_preserves_dummies_and_initial_code(self):
        stg = STG("t", inputs=["a"], outputs=["b"])
        stg.add_place("p0", tokens=1)
        stg.add_place("p1")
        stg.add_transition("a+", SignalEdge("a", +1))
        stg.add_transition("eps", None)
        stg.add_arc("p0", "a+")
        stg.add_arc("a+", "p1")
        stg.add_arc("p1", "eps")
        stg.set_initial_value("b", 1)
        rebuilt = stg_from_json(stg_to_json(stg))
        assert rebuilt.content_hash() == stg.content_hash()
        assert rebuilt.is_dummy(1)
        assert rebuilt.declared_initial_code == {"b": 1}

    def test_same_hash_as_g_source_submission(self):
        stg = vme_bus()
        via_json = parse_check_request(
            {"schema": SCHEMA, "stg": stg_to_json(stg)}
        )
        via_source = parse_check_request(
            {"schema": SCHEMA, "source": write_stg(stg)}
        )
        assert via_json.stg_hash == via_source.stg_hash

    @pytest.mark.parametrize(
        "mutation, match",
        [
            ({"format": "nope"}, "unknown stg format"),
            ({"name": ""}, "name"),
            ({"places": [["p", -1]]}, "tokens"),
            ({"places": [["p", "x"]]}, "tokens"),
            ({"transitions": [["t"]]}, "transitions"),
            # bare strings are sequences too; they must be rejected by the
            # shape check, not by a downstream builder error
            ({"places": ["p0"]}, "places must be"),
            ({"transitions": ["ab"]}, "transitions must be"),
            ({"arcs": ["ab"]}, "arcs must be"),
            ({"arcs": [["a", "b", 0]]}, "weight"),
            ({"initial": {"a": 2}}, "0 or 1"),
            ({"initial": {"zz": 1}}, "invalid stg payload"),
        ],
    )
    def test_malformed_payloads_raise_protocol_error(self, mutation, match):
        payload = stg_to_json(vme_bus())
        payload.update(mutation)
        with pytest.raises(ProtocolError, match=match):
            stg_from_json(payload)

    def test_non_object_payload(self):
        with pytest.raises(ProtocolError):
            stg_from_json([1, 2, 3])


class TestParseCheckRequest:
    def test_source_model_and_stg_accepted(self):
        stg = vme_bus()
        for payload in (
            {"source": write_stg(stg)},
            {"model": "RING"},
            {"stg": stg_to_json(stg)},
        ):
            request = parse_check_request(dict(payload, schema=SCHEMA))
            assert request.properties == ("csc",)
            assert request.engines == ("ilp",)

    def test_schema_default_and_mismatch(self):
        assert parse_check_request({"model": "RING"}).name == "RING"
        with pytest.raises(ProtocolError, match="unsupported schema"):
            parse_check_request({"schema": "repro-serve/999", "model": "RING"})

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({}, "exactly one of"),
            ({"source": "x", "model": "RING"}, "exactly one of"),
            ({"source": "   "}, "non-empty"),
            ({"source": "garbage"}, "cannot parse 'source'"),
            ({"model": "NO-SUCH"}, "unknown target"),
            ({"model": "RING", "properties": []}, "properties"),
            ({"model": "RING", "properties": ["nope"]}, "unknown property"),
            ({"model": "RING", "engines": []}, "engines"),
            ({"model": "RING", "engines": ["warp"]}, "unknown engine"),
            ({"model": "RING", "node_budget": 0}, "node_budget"),
            ({"model": "RING", "deadline": -1}, "deadline"),
            ("not a dict", "JSON object"),
        ],
    )
    def test_invalid_requests(self, payload, match):
        if isinstance(payload, dict):
            payload = dict(payload, schema=SCHEMA)
        with pytest.raises(ProtocolError, match=match):
            parse_check_request(payload)

    def test_properties_deduped_and_lowered(self):
        request = parse_check_request(
            {"schema": SCHEMA, "model": "RING", "properties": ["CSC", "usc", "csc"]}
        )
        assert request.properties == ("csc", "usc")

    def test_jobs_carry_deadline_and_budget(self):
        request = parse_check_request(
            {
                "schema": SCHEMA,
                "model": "RING",
                "properties": ["usc", "csc"],
                "deadline": 2.5,
                "node_budget": 100,
            }
        )
        jobs = request.jobs(default_deadline=9.0)
        assert [job.property for job in jobs] == ["usc", "csc"]
        assert all(job.timeout == 2.5 for job in jobs)
        assert all(job.node_budget == 100 for job in jobs)
        # the default only applies when the request did not set one
        bare = parse_check_request({"schema": SCHEMA, "model": "RING"})
        assert bare.jobs(default_deadline=9.0)[0].timeout == 9.0

    def test_dedup_key_tracks_limits(self):
        base = parse_check_request({"schema": SCHEMA, "model": "RING"})
        same = parse_check_request({"schema": SCHEMA, "model": "RING"})
        other = parse_check_request(
            {"schema": SCHEMA, "model": "RING", "node_budget": 5}
        )
        assert base.dedup_key() == same.dedup_key()
        assert base.dedup_key() != other.dedup_key()


class TestResultsAndExitCodes:
    def test_result_to_dict_roundtrips_engine_outcome(self):
        job = VerificationJob(stg=vme_bus(), property="csc")
        result = execute_engine(job, "ilp")
        wire = result_to_dict(result)
        assert wire["verdict"] == "violated"
        assert wire["holds"] is False
        assert wire["engine"] == "ilp"
        assert wire["witness"] == result.witness

    def test_exit_codes_match_check_semantics(self):
        holds = {"verdict": "holds", "holds": True}
        violated = {"verdict": "violated", "holds": False}
        limit = {"verdict": "limit", "holds": None}
        assert exit_code_for([holds, holds]) == 0
        assert exit_code_for([holds, violated]) == 1
        assert exit_code_for([violated, limit]) == 2
        assert exit_code_for([]) == 0

    def test_envelope_and_error_payload(self):
        assert envelope(x=1) == {"schema": SCHEMA, "x": 1}
        payload = error_payload("boom", retry_after=3)
        assert payload["schema"] == SCHEMA
        assert payload["error"] == "boom"
        assert payload["retry_after"] == 3

    def test_unsound_job_result_maps_to_exit_2(self):
        wire = result_to_dict(
            JobResult(
                job_id="x", name="x", property="csc", verdict="timeout",
                error="too slow",
            )
        )
        assert exit_code_for([wire]) == 2
