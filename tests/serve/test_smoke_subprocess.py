"""End-to-end smoke test: the real ``repro-stg serve`` process over HTTP.

This is the acceptance test of the serving tentpole, run exactly the way CI
runs it: spawn the CLI on an ephemeral port, discover the address from the
``serving on ...`` announcement, drive it with the stdlib client, and check

* verdicts, witnesses and exit codes match ``repro-stg check`` for golden
  models (one of them CSC-violating),
* a tiny admission queue yields 429 + ``Retry-After`` under a burst while
  ``/v1/healthz`` stays green,
* SIGTERM drains gracefully: accepted work completes, the process exits 0.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve.client import Rejected, ServeClient
from repro.stg.parser import write_stg

SERVE_ENV = dict(
    os.environ,
    PYTHONPATH="src",
    PYTHONUNBUFFERED="1",
)


def start_server(*extra_args):
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--workers",
            "0",
            "--no-cache",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=SERVE_ENV,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    )
    line = process.stdout.readline()
    if not line.startswith("serving on "):
        process.kill()
        stderr = process.stderr.read()
        raise AssertionError(f"no announce line, got {line!r}; stderr: {stderr}")
    url = line.split()[-1]
    return process, ServeClient(url, timeout=30.0)


def stop_server(process, timeout=30.0):
    """SIGTERM, wait, return (returncode, stderr)."""
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10.0)
        raise
    return process.returncode, process.stderr.read()


def cli_check_exit(tmp_path, model, prop):
    """Exit code of ``repro-stg check`` on ``model`` the official way."""
    from repro.models import TABLE1_BENCHMARKS

    path = tmp_path / f"{model}.g"
    path.write_text(write_stg(TABLE1_BENCHMARKS[model]()))
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "check", str(path), "-p", prop],
        env=SERVE_ENV,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        capture_output=True,
    ).returncode


class TestServeSmoke:
    def test_golden_verdicts_and_graceful_drain(self, tmp_path):
        process, client = start_server()
        try:
            assert client.healthz() and client.readyz()

            # RING satisfies CSC: service exit 0, same as the CLI
            ring = client.check(model="RING", properties=["csc"], wait=True)
            assert ring["state"] == "done"
            assert ring["results"][0]["verdict"] == "holds"
            assert ring["exit_code"] == cli_check_exit(tmp_path, "RING", "csc") == 0

            # LAZYRING violates CSC: witness reported, exit 1, same as CLI
            lazy = client.check(model="LAZYRING", properties=["csc"], wait=True)
            assert lazy["results"][0]["verdict"] == "violated"
            assert lazy["results"][0]["witness"]
            assert (
                lazy["exit_code"]
                == cli_check_exit(tmp_path, "LAZYRING", "csc")
                == 1
            )

            # a job accepted just before SIGTERM is drained, not dropped:
            # exit 0 + the farewell line prove the graceful path ran
            client.check(model="DUP-MOD-A", properties=["csc"])
            returncode, stderr = stop_server(process)
            assert returncode == 0
            assert "serve: drained, bye" in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)

    def test_429_burst_then_drain_completes_accepted_work(self):
        from repro.models.scalable import muller_pipeline

        heavy_source = write_stg(muller_pipeline(12))
        process, client = start_server(
            "--queue-limit", "1", "--batch-limit", "1"
        )
        try:
            # occupy the dispatcher with a multi-second job
            heavy = client.check(source=heavy_source, properties=["csc"])
            deadline = time.monotonic() + 30.0
            while client.job(heavy["id"])["state"] != "running":
                assert time.monotonic() < deadline, "heavy job never started"
                time.sleep(0.02)

            # one more fits the queue; the burst after it bounces with 429
            queued = client.check(model="RING", properties=["csc"])
            rejected = None
            for prop in ("usc", "normalcy"):  # distinct dedup keys
                try:
                    client.check(model="RING", properties=[prop])
                except Rejected as exc:
                    rejected = exc
                    break
            assert rejected is not None, "burst was never refused"
            assert rejected.retry_after >= 1
            assert client.healthz() is True  # saturated, not sick

            # SIGTERM: admission stops, but both accepted jobs finish.
            # The server answers GETs while draining and only exits once
            # the backlog is empty, so polls race benignly with shutdown:
            # a dropped connection means the drain already completed.
            process.send_signal(signal.SIGTERM)
            observed = {}
            for job in (heavy, queued):
                try:
                    observed[job["id"]] = client.wait_for(
                        job["id"], timeout=60.0
                    )
                except OSError:
                    break
            for job_id, document in observed.items():
                assert document["state"] == "done", job_id
            process.wait(timeout=60.0)
            # exit 0 is only reached after drain(): every accepted job ran
            assert process.returncode == 0
            assert "serve: drained, bye" in process.stderr.read()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)
