"""Tests for in-flight request deduplication."""

import threading

from repro.serve.dedup import DedupIndex


class TestAcquireComplete:
    def test_first_acquire_is_primary(self):
        index = DedupIndex()
        assert index.acquire(("k",), "j1") is None
        assert index.in_flight == 1

    def test_second_acquire_piggybacks(self):
        index = DedupIndex()
        index.acquire(("k",), "j1")
        assert index.acquire(("k",), "j2") == "j1"
        assert index.acquire(("k",), "j3") == "j1"
        assert index.stats()["hits"] == 2
        assert index.in_flight == 1

    def test_distinct_keys_do_not_collide(self):
        index = DedupIndex()
        assert index.acquire(("a",), "j1") is None
        assert index.acquire(("b",), "j2") is None
        assert index.in_flight == 2

    def test_complete_returns_followers_and_frees_key(self):
        index = DedupIndex()
        index.acquire(("k",), "j1")
        index.acquire(("k",), "j2")
        index.acquire(("k",), "j3")
        assert index.complete(("k",)) == ["j2", "j3"]
        assert index.in_flight == 0
        # the key is free again: a new request becomes a fresh primary
        assert index.acquire(("k",), "j4") is None

    def test_complete_is_idempotent(self):
        index = DedupIndex()
        index.acquire(("k",), "j1")
        assert index.complete(("k",)) == []
        assert index.complete(("k",)) == []


class TestRelease:
    def test_release_rolls_back_failed_admission(self):
        index = DedupIndex()
        index.acquire(("k",), "j1")
        follower_raced_in = index.acquire(("k",), "j2")
        assert follower_raced_in == "j1"
        # the primary was refused admission: release returns the orphans
        assert index.release(("k",), "j1") == ["j2"]
        assert index.in_flight == 0
        assert index.acquire(("k",), "j3") is None

    def test_release_of_unknown_key_is_noop(self):
        index = DedupIndex()
        assert index.release(("nope",), "jx") == []

    def test_release_by_non_primary_is_noop(self):
        index = DedupIndex()
        index.acquire(("k",), "j1")
        index.acquire(("k",), "j2")
        assert index.release(("k",), "j2") == []
        assert index.in_flight == 1


class TestConcurrency:
    def test_exactly_one_primary_per_key_under_contention(self):
        index = DedupIndex()
        outcomes = {}
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def contender(job_id):
            barrier.wait()
            primary = index.acquire(("hot",), job_id)
            with lock:
                outcomes[job_id] = primary

        threads = [
            threading.Thread(target=contender, args=(f"j{n}",)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        primaries = [job for job, prim in outcomes.items() if prim is None]
        assert len(primaries) == 1
        winner = primaries[0]
        assert all(
            prim == winner for job, prim in outcomes.items() if job != winner
        )
        followers = index.complete(("hot",))
        assert sorted(followers) == sorted(job for job in outcomes if job != winner)
        assert index.in_flight == 0
