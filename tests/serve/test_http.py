"""HTTP-layer tests: routes, status codes, headers — through ServeClient.

The server runs in-process on an ephemeral port with an inline pool, the
client talks real HTTP over the loopback; everything the CLI smoke test
does over a subprocess boundary is first proven here where failures are
debuggable.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine.jobs import ENGINES, register_engine
from repro.serve import protocol
from repro.serve.client import ClientError, Rejected, ServeClient
from repro.serve.server import make_server


@pytest.fixture
def server():
    httpd = make_server(workers=0, lint=False, queue_limit=4, batch_limit=1)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    httpd.service.close(timeout=10.0, cancel=True)
    thread.join(timeout=5.0)


@pytest.fixture
def client(server):
    return ServeClient(server.url, timeout=10.0)


@pytest.fixture
def sleepy():
    gate = threading.Event()

    def engine(job):
        gate.wait(30.0)
        return True, None, {}

    register_engine("sleepy", engine)
    yield gate
    gate.set()
    ENGINES.pop("sleepy", None)


class TestRoutes:
    def test_check_then_poll_to_verdict(self, client):
        job = client.check(model="RING", properties=["csc"])
        assert job["state"] in ("queued", "running", "done")
        assert job["id"].startswith("j")
        done = client.wait_for(job["id"], timeout=30.0)
        assert done["state"] == "done"
        assert done["results"][0]["verdict"] == "holds"
        assert done["exit_code"] == 0
        assert ServeClient.exit_code(done) == 0

    def test_csc_violation_reports_witness_and_exit_1(self, client):
        done = client.check(model="LAZYRING", properties=["csc"], wait=True)
        result = done["results"][0]
        assert result["verdict"] == "violated"
        assert result["holds"] is False
        assert result["witness"]
        assert done["exit_code"] == 1

    def test_health_and_ready(self, client):
        assert client.healthz() is True
        assert client.readyz() is True

    def test_metrics_document(self, client):
        client.check(model="RING", wait=True)
        document = client.metrics()
        assert document["schema"] == protocol.SCHEMA
        assert document["queue"]["accepted"] >= 1
        assert document["latency"]["total"]["count"] >= 1

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.job("j000000-00000000")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, client, server):
        for method, path in (("GET", "/nope"), ("POST", "/v1/nope")):
            request = urllib.request.Request(
                f"{server.url}{path}", method=method, data=b"{}" if method == "POST" else None
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5.0)
            assert excinfo.value.code == 404


class TestBadRequests:
    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/check",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["schema"] == protocol.SCHEMA
        assert "not JSON" in payload["error"]

    def test_empty_body_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/v1/check", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 400

    def test_unknown_model_is_400_with_error_payload(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.check(model="NO-SUCH-MODEL")
        assert excinfo.value.status == 400
        assert "unknown target" in excinfo.value.payload["error"]

    def test_unparsable_source_is_400(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.check(source="this is not astg text")
        assert excinfo.value.status == 400

    def test_bad_property_is_400(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.check(model="RING", properties=["bogus"])
        assert excinfo.value.status == 400


class TestBackpressureOverHttp:
    def test_429_with_retry_after_while_health_stays_green(
        self, client, server, sleepy
    ):
        service = server.service
        blocker = client.check(model="RING", engines=["sleepy"], node_budget=1)
        deadline = time.monotonic() + 10.0
        while service.get(blocker["id"]).state != "running":
            assert time.monotonic() < deadline, "blocker never started"
            time.sleep(0.01)
        # fill the whole queue with distinct requests
        queued = [
            client.check(model="RING", engines=["sleepy"], node_budget=2 + n)
            for n in range(service.queue.limit)
        ]
        with pytest.raises(Rejected) as excinfo:
            client.check(model="RING", engines=["sleepy"], node_budget=999)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after >= 1
        assert excinfo.value.payload["retry_after"] == excinfo.value.retry_after
        # saturated but alive: liveness and readiness both stay green
        assert client.healthz() is True
        assert client.readyz() is True
        sleepy.set()
        for job in [blocker] + queued:
            done = client.wait_for(job["id"], timeout=30.0)
            assert done["state"] == "done"

    def test_503_when_draining(self, client, server):
        server.service.begin_drain()
        assert client.healthz() is True
        assert client.readyz() is False
        with pytest.raises(ClientError) as excinfo:
            client.check(model="RING")
        assert excinfo.value.status == 503


class TestClientErrorMapping:
    def test_unparseable_retry_after_still_raises_rejected(self):
        # HTTP allows Retry-After to be an HTTP-date; a proxy rewriting the
        # header must not turn backpressure into a ValueError
        client = ServeClient("http://unused")
        with pytest.raises(Rejected) as excinfo:
            client._raise_for(
                429, {"retry-after": "Fri, 08 Aug 2026 01:02:03 GMT"}, {}
            )
        assert excinfo.value.retry_after == 1

    def test_retry_after_falls_back_to_payload_hint(self):
        client = ServeClient("http://unused")
        with pytest.raises(Rejected) as excinfo:
            client._raise_for(429, {}, {"retry_after": 7})
        assert excinfo.value.retry_after == 7


class TestDedupOverHttp:
    def test_follower_carries_deduped_of(self, client, server, sleepy):
        primary = client.check(model="RING", engines=["sleepy"])
        deadline = time.monotonic() + 10.0
        while server.service.get(primary["id"]).state != "running":
            assert time.monotonic() < deadline, "primary never started"
            time.sleep(0.01)
        follower = client.check(model="RING", engines=["sleepy"])
        assert follower["deduped_of"] == primary["id"]
        sleepy.set()
        done_primary = client.wait_for(primary["id"], timeout=30.0)
        done_follower = client.wait_for(follower["id"], timeout=30.0)
        assert done_follower["results"] == done_primary["results"]
