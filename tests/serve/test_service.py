"""In-process tests of :class:`VerificationService`: the tentpole's core.

Everything here exercises the service through its Python surface (submit /
wait / metrics / drain) with an inline pool (``workers=0``) so the engine
work runs deterministically in the dispatcher thread.  Backpressure and
drain tests use a registered ``sleepy`` engine gated on a
:class:`threading.Event`, which blocks the dispatcher until the test says
go — no sleeps, no flakes.
"""

import threading
import time

import pytest

from repro.engine.jobs import ENGINES, VerificationJob, execute_engine, register_engine
from repro.serve import protocol
from repro.serve.queue import QueueClosed
from repro.serve.server import Histogram, ServiceSaturated, VerificationService
from tests.conftest import TABLE1_VERDICTS


def make_service(**kwargs):
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("lint", False)
    kwargs.setdefault("cache", None)
    return VerificationService(**kwargs)


@pytest.fixture
def service():
    svc = make_service()
    yield svc
    svc.close(timeout=10.0, cancel=True)


@pytest.fixture
def sleepy():
    """A registered engine that blocks until the returned gate is set."""
    gate = threading.Event()

    def engine(job):
        gate.wait(30.0)
        return True, None, {}

    register_engine("sleepy", engine)
    yield gate
    gate.set()
    ENGINES.pop("sleepy", None)


def submit_and_wait(service, payload, timeout=60.0):
    job = service.submit(payload)
    done = service.wait(job.id, timeout=timeout)
    assert done is not None and done.state in protocol.TERMINAL_STATES, (
        f"job {job.id} stuck in state {job.state}"
    )
    return done


def wait_until(predicate, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


class TestGoldenEquivalence:
    """Acceptance: service answers == ``repro-stg check`` for every model."""

    def test_every_golden_model_matches_direct_engine_run(self):
        service = make_service(queue_limit=len(TABLE1_VERDICTS) + 1)
        try:
            jobs = {
                name: service.submit(
                    {
                        "schema": protocol.SCHEMA,
                        "model": name,
                        "properties": ["usc", "csc"],
                    }
                )
                for name in sorted(TABLE1_VERDICTS)
            }
            for name, job in jobs.items():
                done = service.wait(job.id, timeout=120.0)
                assert done.state == protocol.STATE_DONE, (name, done.error)
                by_prop = {r.property: r for r in done.results}
                assert set(by_prop) == {"usc", "csc"}
                for prop, expected_holds in TABLE1_VERDICTS[name].items():
                    served = by_prop[prop]
                    direct = execute_engine(
                        VerificationJob(
                            stg=job.request.stg, property=prop, name=name
                        ),
                        "ilp",
                    )
                    assert served.holds == expected_holds == direct.holds, (
                        name, prop
                    )
                    assert served.verdict == direct.verdict
                    # witnesses are deterministic for the ILP engine
                    assert served.witness == direct.witness
                # exit semantics match `repro-stg check MODEL usc csc`
                wire = [protocol.result_to_dict(r) for r in done.results]
                expected_exit = (
                    0 if all(TABLE1_VERDICTS[name].values()) else 1
                )
                assert protocol.exit_code_for(wire) == expected_exit
                assert done.to_dict()["exit_code"] == expected_exit
        finally:
            service.close(timeout=10.0, cancel=True)

    def test_source_and_json_submissions_agree(self, service, vme):
        from repro.stg.parser import write_stg

        via_source = submit_and_wait(
            service, {"source": write_stg(vme), "properties": ["csc"]}
        )
        via_json = submit_and_wait(
            service,
            {"stg": protocol.stg_to_json(vme), "properties": ["csc"]},
        )
        assert via_source.results[0].holds is False  # vme-bus violates CSC
        assert via_source.results[0].witness == via_json.results[0].witness
        assert via_source.request.stg_hash == via_json.request.stg_hash


class TestSubmitValidation:
    def test_bad_payload_raises_protocol_error(self, service):
        with pytest.raises(protocol.ProtocolError):
            service.submit({"model": "NO-SUCH-MODEL"})
        with pytest.raises(protocol.ProtocolError):
            service.submit("not an object")
        # nothing was admitted
        assert service.metrics()["queue"]["offered"] == 0

    def test_get_unknown_job(self, service):
        assert service.get("j999999-deadbeef") is None
        assert service.wait("j999999-deadbeef", timeout=0.05) is None


class TestBackpressure:
    def test_429_when_queue_full_and_healthz_stays_green(self, sleepy):
        service = make_service(queue_limit=1, batch_limit=1)
        try:
            blocker = service.submit(
                {"model": "RING", "engines": ["sleepy"], "node_budget": 1}
            )
            # dispatcher picks the blocker up and parks on the gate
            wait_until(
                lambda: service.get(blocker.id).state == protocol.STATE_RUNNING,
                what="blocker running",
            )
            queued = service.submit(
                {"model": "RING", "engines": ["sleepy"], "node_budget": 2}
            )
            assert queued.state == protocol.STATE_QUEUED
            # distinct node_budget => distinct dedup key => real third request
            with pytest.raises(ServiceSaturated) as excinfo:
                service.submit(
                    {"model": "RING", "engines": ["sleepy"], "node_budget": 3}
                )
            assert excinfo.value.retry_after >= 1
            # saturation is not sickness
            assert service.healthy
            assert service.ready
            assert service.metrics()["queue"]["rejected"] == 1
            sleepy.set()
            for job in (blocker, queued):
                done = service.wait(job.id, timeout=30.0)
                assert done.state == protocol.STATE_DONE
        finally:
            sleepy.set()
            service.close(timeout=10.0, cancel=True)

    def test_retry_after_reflects_observed_service_time(self, service):
        for _ in range(10):
            service.queue.note_service_time(3.0)
        assert service.queue.retry_after() == 3


class TestDedup:
    def test_identical_inflight_requests_collapse(self, sleepy):
        service = make_service(queue_limit=4, batch_limit=1)
        try:
            payload = {"model": "RING", "engines": ["sleepy"]}
            primary = service.submit(payload)
            wait_until(
                lambda: service.get(primary.id).state == protocol.STATE_RUNNING,
                what="primary running",
            )
            follower = service.submit(payload)
            assert follower.deduped_of == primary.id
            # the follower never consumed a queue slot
            assert service.metrics()["queue"]["offered"] == 1
            assert service.metrics()["dedup"]["hits"] == 1
            sleepy.set()
            done_primary = service.wait(primary.id, timeout=30.0)
            done_follower = service.wait(follower.id, timeout=30.0)
            assert done_primary.state == protocol.STATE_DONE
            assert done_follower.state == protocol.STATE_DONE
            assert done_follower.results == done_primary.results
        finally:
            sleepy.set()
            service.close(timeout=10.0, cancel=True)

    def test_follower_resolved_even_if_primary_completes_during_submit(
        self, sleepy
    ):
        """Regression: a primary publishing the instant dedup.acquire()
        returns must still resolve the follower — the follower has to be in
        the job table *before* it attaches to the primary."""
        service = make_service(queue_limit=4, batch_limit=1)
        try:
            payload = {"model": "RING", "engines": ["sleepy"]}
            primary = service.submit(payload)
            wait_until(
                lambda: service.get(primary.id).state == protocol.STATE_RUNNING,
                what="primary running",
            )
            real_acquire = service.dedup.acquire

            def racing_acquire(key, job_id):
                attached_to = real_acquire(key, job_id)
                if attached_to is not None:
                    # worst-case interleaving: the primary publishes (and
                    # runs dedup.complete) before submit() gets any further
                    sleepy.set()
                    done = service.wait(primary.id, timeout=30.0)
                    assert done.state == protocol.STATE_DONE
                return attached_to

            service.dedup.acquire = racing_acquire
            follower = service.submit(payload)
            assert follower.deduped_of == primary.id
            done_follower = service.wait(follower.id, timeout=5.0)
            assert done_follower.state == protocol.STATE_DONE
            assert done_follower.results == service.get(primary.id).results
        finally:
            sleepy.set()
            service.close(timeout=10.0, cancel=True)

    def test_sequential_identical_requests_do_not_dedup(self, service):
        payload = {"model": "RING"}
        first = submit_and_wait(service, payload)
        second = submit_and_wait(service, payload)
        assert first.deduped_of is None
        assert second.deduped_of is None
        assert service.metrics()["dedup"]["hits"] == 0


class TestCacheIntegration:
    def test_repeat_requests_hit_the_result_cache(self, tmp_path):
        service = make_service(cache_dir=str(tmp_path / "cache"))
        try:
            first = submit_and_wait(service, {"model": "RING"})
            assert first.results[0].from_cache is False
            second = submit_and_wait(service, {"model": "RING"})
            assert second.results[0].from_cache is True
            assert second.results[0].holds == first.results[0].holds
            cache = service.metrics()["cache"]
            assert cache["enabled"] is True
            assert cache["hits"] == 1
            assert cache["hit_ratio"] == 0.5
        finally:
            service.close(timeout=10.0, cancel=True)


class TestDrain:
    def test_drain_finishes_accepted_work_and_stops_admission(self, sleepy):
        service = make_service(queue_limit=4, batch_limit=1)
        try:
            blocker = service.submit({"model": "RING", "engines": ["sleepy"]})
            wait_until(
                lambda: service.get(blocker.id).state == protocol.STATE_RUNNING,
                what="blocker running",
            )
            queued = service.submit({"model": "LAZYRING", "engines": ["sleepy"]})
            service.begin_drain()
            assert service.healthy
            assert not service.ready
            with pytest.raises(QueueClosed):
                service.submit({"model": "DUP-MOD-A"})
            sleepy.set()
            assert service.drain(timeout=30.0) is True
            # every accepted job reached a terminal, *successful* state
            for job in (blocker, queued):
                assert service.get(job.id).state == protocol.STATE_DONE
        finally:
            sleepy.set()
            service.close(timeout=10.0, cancel=True)

    def test_drain_of_idle_service_is_immediate(self, service):
        submit_and_wait(service, {"model": "RING"})
        assert service.drain(timeout=10.0) is True
        assert service.healthy  # liveness survives a drain; readiness does not
        assert not service.ready

    def test_close_cancels_stuck_work(self, sleepy):
        service = make_service(queue_limit=4, batch_limit=1)
        blocker = service.submit({"model": "RING", "engines": ["sleepy"]})
        wait_until(
            lambda: service.get(blocker.id).state == protocol.STATE_RUNNING,
            what="blocker running",
        )
        queued = service.submit({"model": "LAZYRING", "engines": ["sleepy"]})
        # never release the gate: drain cannot finish, close must cancel
        service.close(timeout=0.2, cancel=True)
        assert service.get(queued.id).state == protocol.STATE_CANCELLED
        assert service.get(queued.id).to_dict()["exit_code"] == 2
        sleepy.set()  # unblock the parked dispatcher thread


class TestDispatcherCrash:
    def test_crash_turns_health_red_and_fails_queued_jobs(self, sleepy):
        service = make_service(queue_limit=4, batch_limit=1)
        try:
            blocker = service.submit({"model": "RING", "engines": ["sleepy"]})
            wait_until(
                lambda: service.get(blocker.id).state == protocol.STATE_RUNNING,
                what="blocker running",
            )
            queued = service.submit({"model": "LAZYRING", "engines": ["sleepy"]})

            def boom(timeout=None):
                raise RuntimeError("boom")

            service.queue.take = boom  # next dispatcher iteration dies
            sleepy.set()
            done_blocker = service.wait(blocker.id, timeout=30.0)
            assert done_blocker.state == protocol.STATE_DONE
            wait_until(lambda: not service.healthy, what="health to go red")
            assert not service.ready
            # the job nobody will ever run is failed, not queued forever
            done_queued = service.wait(queued.id, timeout=5.0)
            assert done_queued.state == protocol.STATE_FAILED
            assert "crashed" in done_queued.error
            # and new work is refused instead of silently accepted
            with pytest.raises(QueueClosed):
                service.submit({"model": "DUP-MOD-A"})
        finally:
            sleepy.set()
            service.close(timeout=5.0, cancel=True)


class TestTerminalRetention:
    def test_terminal_jobs_evicted_beyond_cap(self):
        service = make_service(terminal_cap=2, terminal_ttl=None)
        try:
            ids = [
                submit_and_wait(service, {"model": model}).id
                for model in ("RING", "LAZYRING", "DUP-MOD-A")
            ]
            assert service.get(ids[0]) is None  # oldest evicted
            assert service.get(ids[1]) is not None
            assert service.get(ids[2]) is not None
            metrics = service.metrics()
            assert metrics["jobs_evicted"] == 1
            assert metrics["jobs_retained"] == 2
        finally:
            service.close(timeout=10.0, cancel=True)

    def test_terminal_jobs_expire_after_ttl(self):
        service = make_service(terminal_ttl=0.05)
        try:
            done = submit_and_wait(service, {"model": "RING"})
            time.sleep(0.1)
            # any later admission sweeps out expired terminal documents
            submit_and_wait(service, {"model": "LAZYRING"})
            assert service.get(done.id) is None
            assert service.metrics()["jobs_evicted"] >= 1
        finally:
            service.close(timeout=10.0, cancel=True)

    def test_in_flight_jobs_are_never_evicted(self, sleepy):
        service = make_service(
            queue_limit=4, batch_limit=1, terminal_cap=0, terminal_ttl=None
        )
        try:
            blocker = service.submit({"model": "RING", "engines": ["sleepy"]})
            wait_until(
                lambda: service.get(blocker.id).state == protocol.STATE_RUNNING,
                what="blocker running",
            )
            assert service.get(blocker.id) is not None
            sleepy.set()
            # with cap 0 the document goes away as soon as it is terminal
            wait_until(
                lambda: service.get(blocker.id) is None, what="eviction"
            )
            assert service.metrics()["jobs_evicted"] == 1
        finally:
            sleepy.set()
            service.close(timeout=10.0, cancel=True)


class TestMetrics:
    def test_document_shape_and_counters(self, service):
        submit_and_wait(service, {"model": "RING", "properties": ["usc", "csc"]})
        document = service.metrics()
        assert document["schema"] == protocol.SCHEMA
        assert document["jobs"] == {protocol.STATE_DONE: 1}
        assert document["queue"]["accepted"] == 1
        assert document["engine"]["jobs"] == 2
        assert document["engine"]["completed"] == 2
        assert document["cache"]["enabled"] is False
        assert document["latency"]["total"]["count"] == 1
        assert document["latency"]["queue_wait"]["count"] == 1
        assert document["latency"]["exec"]["count"] == 1
        assert document["latency"]["total"]["p95_s"] is not None
        assert document["uptime_s"] > 0


class TestHistogram:
    def test_quantiles_interpolate_within_buckets(self):
        histogram = Histogram()
        for _ in range(100):
            histogram.observe(0.3)  # lands in the (0.25, 0.5] bucket
        p50 = histogram.quantile(0.50)
        assert 0.25 < p50 <= 0.5
        assert histogram.quantile(0.95) <= 0.5

    def test_empty_histogram_has_no_quantiles(self):
        histogram = Histogram()
        assert histogram.quantile(0.5) is None
        document = histogram.to_dict()
        assert document["count"] == 0
        assert document["p50_s"] is None

    def test_overflow_bucket(self):
        histogram = Histogram()
        histogram.observe(120.0)
        document = histogram.to_dict()
        assert document["buckets"]["+Inf"] == 1
        assert document["buckets"]["60"] == 0

    def test_to_dict_buckets_are_cumulative(self):
        histogram = Histogram()
        for value in (0.002, 0.002, 0.04, 7.0):
            histogram.observe(value)
        buckets = histogram.to_dict()["buckets"]
        assert buckets["0.0025"] == 2
        assert buckets["0.05"] == 3
        assert buckets["10"] == 4
        assert buckets["+Inf"] == 4
