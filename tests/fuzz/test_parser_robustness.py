"""Parser hardening regressions: minimized fuzzer crashers.

Every ``.g``/``.pn`` file under ``fixtures/`` is a minimized input that once
made a parser escape with something other than :class:`ParseError`
(``ValueError`` from ``int()``, ``NetStructureError`` from net surgery).
The contract — pinned here and enforced campaign-wide by the fuzzer's
parser oracle — is that malformed text produces :class:`ParseError` and
nothing else.
"""

from pathlib import Path

import pytest

from repro.exceptions import ParseError
from repro.petri.parser import parse_net
from repro.stg.parser import parse_stg

FIXTURES = Path(__file__).parent / "fixtures"

STG_CRASHERS = sorted(FIXTURES.glob("*.g"))
NET_CRASHERS = sorted(FIXTURES.glob("*.pn"))


def test_fixture_inventory():
    # the globs must actually find the committed crashers
    assert len(STG_CRASHERS) >= 5
    assert len(NET_CRASHERS) >= 2


@pytest.mark.parametrize(
    "path", STG_CRASHERS, ids=lambda p: p.stem
)
def test_stg_crasher_raises_parse_error(path):
    with pytest.raises(ParseError) as excinfo:
        parse_stg(path.read_text(), filename=path.name)
    # diagnostics carry a message (and, for all current fixtures, a line)
    assert str(excinfo.value)


@pytest.mark.parametrize(
    "path", NET_CRASHERS, ids=lambda p: p.stem
)
def test_net_crasher_raises_parse_error(path):
    with pytest.raises(ParseError):
        parse_net(path.read_text())


class TestOnlyParseErrorEscapes:
    """Sweep hand-written malformed snippets beyond the committed crashers."""

    SNIPPETS = [
        "",
        ".end\n.end\n",
        ".graph\n",
        ".bogus directive\n.end\n",
        ".outputs z\n.graph\nz+\n.end\n",
        ".outputs z\n.graph\np0 p1\n.end\n",
        ".outputs z\n.graph\np0 z+\n.marking { nope }\n.end\n",
        ".outputs z\n.graph\np0 z+\n.marking { <p0,z+> }\n.end\n",
        ".outputs z z\n.graph\np0 z+\n.end\n",
        ".inputs a\n.outputs a\n.graph\np0 a+\n.end\n",
        ".outputs z\n.graph\np0 z+\n.initial z=2\n.end\n",
    ]

    @pytest.mark.parametrize("snippet", SNIPPETS)
    def test_stg_snippets(self, snippet):
        with pytest.raises(ParseError):
            parse_stg(snippet)
