"""The oracle battery: guards, differential, axes, metamorphic, parser."""

import pytest

from repro.engine.jobs import ENGINES, register_engine
from repro.fuzz.generate import FuzzCase, generate_case
from repro.fuzz.oracle import (
    SKIP_INCONSISTENT,
    SKIP_UNBOUNDED,
    SKIP_UNSAFE,
    OracleConfig,
    run_oracles,
)
from repro.models import vme_bus
from repro.stg.stg import STG, SignalEdge


def _case_for(stg, seed=0, index=0):
    return FuzzCase(
        seed=seed,
        index=index,
        base="handmade",
        mutations=(),
        preserving=True,
        stg=stg,
    )


@pytest.fixture
def plant_engine():
    """Register a throwaway engine for one test; always unregistered after."""
    planted = []

    def plant(name, fn):
        planted.append(name)
        register_engine(name, fn)
        return name

    yield plant
    for name in planted:
        ENGINES.pop(name, None)


class TestGuards:
    def test_unbounded_case_is_skipped(self):
        stg = STG("unbounded", outputs=["z"])
        stg.add_place("p", tokens=1)
        stg.add_transition("z+", SignalEdge("z", +1))
        stg.add_arc("p", "z+")
        stg.add_arc("z+", "p")
        stg.net.add_arc("z+", "p")  # weight 2 out: token count grows forever
        outcome = run_oracles(_case_for(stg), OracleConfig(parser_probes=0))
        assert not outcome.checkable
        assert outcome.skip_reason == SKIP_UNBOUNDED
        assert outcome.divergences == []

    def test_unsafe_case_is_skipped(self):
        stg = STG("unsafe", outputs=["z"])
        stg.add_place("p", tokens=2)
        stg.add_place("q")
        stg.add_transition("z+", SignalEdge("z", +1))
        stg.add_arc("p", "z+")
        stg.add_arc("z+", "q")
        outcome = run_oracles(_case_for(stg), OracleConfig(parser_probes=0))
        assert outcome.skip_reason == SKIP_UNSAFE

    def test_inconsistent_case_is_skipped(self):
        stg = STG("inconsistent", outputs=["z"])
        stg.add_place("p", tokens=1)
        stg.add_place("q")
        stg.add_transition("z+", SignalEdge("z", +1))
        stg.add_transition("z+/1", SignalEdge("z", +1))
        stg.add_arc("p", "z+")
        stg.add_arc("z+", "q")
        stg.add_arc("q", "z+/1")
        outcome = run_oracles(_case_for(stg), OracleConfig(parser_probes=0))
        assert outcome.skip_reason == SKIP_INCONSISTENT


class TestCleanRun:
    def test_vme_bus_has_no_divergence(self):
        outcome = run_oracles(_case_for(vme_bus()))
        assert outcome.checkable
        assert outcome.divergences == []
        assert outcome.oracle_runs > 5

    def test_generated_stream_is_clean(self):
        # a small slice of the default campaign must be divergence-free
        config = OracleConfig()
        for index in range(8):
            outcome = run_oracles(generate_case(11, index), config)
            assert outcome.divergences == [], outcome.divergences


class TestDifferential:
    def test_lying_engine_is_caught(self, plant_engine):
        def lying(job):
            from repro.stg.stategraph import build_state_graph

            graph = build_state_graph(job.stg)
            truth = graph.has_usc() if job.property == "usc" else graph.has_csc()
            return (not truth), None, {}

        name = plant_engine("liar", lying)
        config = OracleConfig(engines=("liar",), parser_probes=0)
        outcome = run_oracles(_case_for(vme_bus()), config)
        subjects = {d.subject for d in outcome.divergences}
        assert f"{name}-vs-sg:usc" in subjects
        assert f"{name}-vs-sg:csc" in subjects

    def test_crashing_engine_is_caught(self, plant_engine):
        def crashing(job):
            raise KeyError("boom")  # not a ReproError: must be reported

        name = plant_engine("crasher", crashing)
        config = OracleConfig(engines=(name,), parser_probes=0)
        outcome = run_oracles(_case_for(vme_bus()), config)
        crash = [d for d in outcome.divergences if d.oracle == "crash"]
        assert crash and crash[0].subject == f"engine.{name}"
        assert "KeyError" in crash[0].signature

    def test_refusing_engine_is_not_a_divergence(self, plant_engine):
        from repro.exceptions import ReproError

        def refusing(job):
            raise ReproError("this engine declines politely")

        name = plant_engine("refuser", refusing)
        config = OracleConfig(engines=(name,), parser_probes=0)
        outcome = run_oracles(_case_for(vme_bus()), config)
        assert outcome.divergences == []


class TestAxes:
    def test_axes_run_on_sampled_indices(self):
        # index 0 samples the facts/refine/cache axes (and workers at 0 % 64)
        config = OracleConfig(engines=(), parser_probes=0, workers_every=0)
        outcome = run_oracles(_case_for(vme_bus(), index=0), config)
        assert outcome.divergences == []
        assert outcome.checkable

    def test_unsampled_index_skips_axes(self):
        config = OracleConfig(engines=(), parser_probes=0)
        lean = run_oracles(_case_for(vme_bus(), index=1), config)
        full = run_oracles(_case_for(vme_bus(), index=0), config)
        assert lean.oracle_runs < full.oracle_runs


class TestMetamorphicAndParser:
    def test_parser_probes_crash_free_on_stream(self):
        config = OracleConfig(
            engines=(), properties=(), parser_probes=6, max_states=64
        )
        for index in range(30):
            outcome = run_oracles(generate_case(23, index), config)
            crashes = [d for d in outcome.divergences if d.oracle == "crash"]
            assert crashes == [], crashes

    def test_roundtrip_oracle_skips_inexpressible(self):
        stg = STG("weighted", outputs=["z"])
        stg.add_place("p", tokens=1)
        stg.add_transition("z+", SignalEdge("z", +1))
        stg.net.add_arc("p", "z+", weight=2)
        stg.add_arc("z+", "p")
        # not round-trippable (weights); oracle must skip, not flag
        from repro.stg.parser import round_trippable

        assert not round_trippable(stg)
