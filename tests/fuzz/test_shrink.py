"""Delta-debugging shrinker: fixpoint reduction under a stable signature."""

import pytest

from repro.engine.jobs import ENGINES, register_engine
from repro.fuzz.generate import FuzzCase
from repro.fuzz.oracle import OracleConfig
from repro.fuzz.shrink import shrink_case, shrink_stg
from repro.models import vme_bus


@pytest.fixture
def liar():
    """An engine that inverts the ground truth — a guaranteed divergence."""

    def lying(job):
        from repro.stg.stategraph import build_state_graph

        graph = build_state_graph(job.stg)
        truth = graph.has_usc() if job.property == "usc" else graph.has_csc()
        return (not truth), None, {}

    register_engine("liar", lying)
    yield "liar"
    ENGINES.pop("liar", None)


def _vme_case():
    # index 1 keeps the sampled axes (facts/refine/cache/workers) out of the
    # predicate, so each shrink check costs one liar run plus the guards
    return FuzzCase(
        seed=0, index=1, base="handmade", mutations=(), preserving=True,
        stg=vme_bus(),
    )


LIAR_CONFIG = OracleConfig(
    engines=("liar",), properties=("usc",), parser_probes=0
)
LIAR_SIG = "differential:liar-vs-sg:usc:mismatch"


class TestShrinkStg:
    def test_shrinks_to_small_reproducer(self):
        # predicate: "still declares signal d" — everything else must go
        stg = vme_bus()
        predicate = lambda s: "d" in s.signals  # noqa: E731
        shrunk = shrink_stg(stg, predicate, max_checks=500)
        assert shrunk is not None
        assert shrunk.accepted > 0
        assert shrunk.stg.signals == ["d"]
        assert not shrunk.exhausted

    def test_unreproducible_input_returns_none(self):
        assert shrink_stg(vme_bus(), lambda s: False) is None

    def test_budget_stops_a_pass(self):
        calls = []

        def predicate(s):
            calls.append(s)
            return True  # every reduction "reproduces": endless appetite

        shrunk = shrink_stg(vme_bus(), predicate, max_checks=5)
        assert shrunk is not None
        assert shrunk.exhausted
        assert shrunk.checks <= 5


class TestShrinkCase:
    def test_minimizes_a_planted_divergence(self, liar):
        case = _vme_case()
        result = shrink_case(case, LIAR_SIG, LIAR_CONFIG, max_checks=80)
        assert result is not None
        assert result.signature == LIAR_SIG
        assert result.accepted > 0
        before = case.stg.net.num_transitions + case.stg.net.num_places
        after = result.stg.net.num_transitions + result.stg.net.num_places
        assert after < before
        # the minimized STG still reproduces the signature
        from repro.fuzz.shrink import divergence_predicate

        assert divergence_predicate(case, LIAR_SIG, LIAR_CONFIG)(result.stg)
        assert "reduction" in result.stats()

    def test_stale_signature_returns_none(self, liar):
        result = shrink_case(
            _vme_case(), "differential:liar-vs-sg:csc:mismatch", LIAR_CONFIG
        )
        assert result is None  # config only checks usc; csc never reproduces
