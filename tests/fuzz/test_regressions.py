"""Regressions for fuzzer-found bugs fixed in this subsystem's first PR.

Campaign ``--seed 0`` flagged two real bugs through the round-trip oracle:

* ``write_stg`` compressed every 1-producer/1-consumer place to the
  implicit ``src dst`` arc form, silently renaming any such place whose
  name was not literally ``<src,dst>`` (s0-c4 and friends);
* ``split_place`` derived dummy/place names from the split place's name,
  producing tokens (``tau_split_<c2-,c2+>_1``) that re-classify as places
  on re-read (s0-c24).

The minimized ``.g`` reproducers live in ``fixtures/roundtrip/``.
"""

from pathlib import Path

import pytest

from repro.fuzz.generate import MUTATORS_BY_NAME, derive_rng
from repro.stg.hashing import canonical_stg_hash
from repro.stg.parser import parse_stg, round_trippable, write_stg

ROUNDTRIP = sorted((Path(__file__).parent / "fixtures" / "roundtrip").glob("*.g"))


@pytest.mark.parametrize("path", ROUNDTRIP, ids=lambda p: p.stem)
def test_roundtrip_fixture_hash_stable(path):
    stg = parse_stg(path.read_text(), filename=path.name)
    assert round_trippable(stg)
    reparsed = parse_stg(write_stg(stg))
    assert canonical_stg_hash(reparsed) == canonical_stg_hash(stg)


def test_writer_keeps_mismatched_implicit_names_explicit():
    # the s0-c4 shape: a place named like an implicit pair it is not
    text = (Path(__file__).parent / "fixtures" / "roundtrip"
            / "implicit-name-mismatch.g").read_text()
    written = write_stg(parse_stg(text))
    # the place must be written explicitly, not as an a+ -> b- arc
    assert "<a-,b->" in written


def test_split_place_names_survive_reparse():
    # the s0-c24 shape: split a place whose own name cannot seed new names
    text = (Path(__file__).parent / "fixtures" / "roundtrip"
            / "implicit-name-mismatch.g").read_text()
    stg = parse_stg(text)
    mutated = MUTATORS_BY_NAME["split_place"].apply(stg, derive_rng(0, "s"))
    assert mutated is not None
    assert round_trippable(mutated)
    reparsed = parse_stg(write_stg(mutated))
    assert canonical_stg_hash(reparsed) == canonical_stg_hash(mutated)
