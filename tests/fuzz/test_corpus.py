"""The persistent dedup corpus."""

import pytest

from repro.fuzz.corpus import CORPUS_ENV, CorpusStore, default_corpus_dir
from repro.fuzz.generate import FuzzCase
from repro.fuzz.oracle import Divergence
from repro.models import vme_bus
from repro.stg.parser import parse_stg


def _case(index=0):
    return FuzzCase(
        seed=0, index=index, base="handmade", mutations=("add_arc",),
        preserving=False, stg=vme_bus(),
    )


def _divergence(case_id="s0-c0", signature="differential:sat-vs-sg:usc:mismatch"):
    return Divergence(
        case_id=case_id,
        oracle="differential",
        subject="sat-vs-sg:usc",
        detail="sat says usc holds, state graph says violated",
        signature=signature,
    )


@pytest.fixture
def corpus(tmp_path):
    return CorpusStore(tmp_path / "corpus")


class TestRecord:
    def test_first_record_is_new(self, corpus):
        key, is_new = corpus.record(_case(), _divergence())
        assert is_new
        entry = corpus.get(key)
        assert entry is not None
        assert entry["case_id"] == "s0-c0"
        assert entry["seed"] == 0 and entry["index"] == 0
        assert entry["mutations"] == ["add_arc"]
        assert entry["hits"] == 1
        assert not entry["minimized"]
        # the stored STG text replays through the parser
        assert parse_stg(entry["stg_text"]).net.num_transitions > 0

    def test_same_signature_dedups_first_trigger_wins(self, corpus):
        key1, new1 = corpus.record(_case(0), _divergence("s0-c0"))
        key2, new2 = corpus.record(_case(7), _divergence("s0-c7"))
        assert (key1, new1, new2) == (key2, True, False)
        entry = corpus.get(key1)
        assert entry["case_id"] == "s0-c0"  # first trigger kept
        assert entry["hits"] == 2
        assert len(corpus) == 1

    def test_different_signatures_are_separate(self, corpus):
        corpus.record(_case(), _divergence(signature="a:b:mismatch"))
        corpus.record(_case(), _divergence(signature="a:c:mismatch"))
        assert len(corpus) == 2


class TestLookup:
    def test_find_by_key_prefix_and_case_id(self, corpus):
        key, _ = corpus.record(_case(3), _divergence("s0-c3"))
        assert corpus.find(key[:8])[0]["key"] == key
        assert corpus.find("s0-c3")[0]["key"] == key
        assert corpus.find("s0-c4") == []

    def test_entries_are_key_ordered(self, corpus):
        for i, sig in enumerate(["z:z:crash", "a:a:mismatch", "m:m:crash"]):
            corpus.record(_case(i), _divergence(f"s0-c{i}", sig))
        keys = [e["key"] for e in corpus.entries()]
        assert keys == sorted(keys)

    def test_foreign_schema_entries_are_ignored(self, corpus):
        key, _ = corpus.record(_case(), _divergence())
        corpus._store.put(key, {"schema": 99, "key": key})
        assert corpus.get(key) is None
        assert len(corpus) == 0


class TestMinimize:
    def test_mark_minimized_roundtrip(self, corpus):
        key, _ = corpus.record(_case(), _divergence())
        assert corpus.mark_minimized(key, ".graph\n.end\n")
        entry = corpus.get(key)
        assert entry["minimized"]
        assert entry["minimized_stg_text"] == ".graph\n.end\n"

    def test_mark_minimized_missing_key(self, corpus):
        assert not corpus.mark_minimized("ff" * 32, "text")


class TestMaintenance:
    def test_clear(self, corpus):
        corpus.record(_case(), _divergence())
        assert corpus.clear() == 1
        assert len(corpus) == 0

    def test_env_var_overrides_location(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CORPUS_ENV, str(tmp_path / "elsewhere"))
        assert default_corpus_dir() == tmp_path / "elsewhere"
        assert CorpusStore().root == tmp_path / "elsewhere"
        monkeypatch.delenv(CORPUS_ENV)
        assert default_corpus_dir().name == "repro-stg-fuzz"
