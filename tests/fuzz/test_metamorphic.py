"""Metamorphic properties over the full Table 1 benchmark suite.

Two relations the fuzzer's oracles assume, pinned here on the real models:

* the canonical STG hash is invariant under declaration reordering;
* USC/CSC verdicts are invariant under bijective signal renaming.

Small models get the exhaustive state-graph oracle; the three large ones
(state graphs in the hundreds of thousands) go through the ilp engine.
"""

import pytest

from repro.core import check_csc, check_usc
from repro.fuzz.generate import derive_rng, renamed_copy, shuffled_copy
from repro.models import TABLE1_BENCHMARKS
from repro.stg.hashing import canonical_stg_hash
from repro.stg.stategraph import build_state_graph
from tests.conftest import SMALL_TABLE1, TABLE1_VERDICTS

LARGE_TABLE1 = sorted(set(TABLE1_BENCHMARKS) - set(SMALL_TABLE1))


class TestReorderHash:
    def test_hash_stable_under_reordering(self, table1_stg):
        rng = derive_rng(0, "metamorphic", table1_stg.name)
        shuffled = shuffled_copy(table1_stg, rng)
        assert canonical_stg_hash(shuffled) == canonical_stg_hash(table1_stg)

    def test_hash_changes_under_renaming(self, table1_stg):
        # the hash is name-sensitive by design — renaming is NOT a no-op
        renamed, _ = renamed_copy(table1_stg)
        assert canonical_stg_hash(renamed) != canonical_stg_hash(table1_stg)


class TestRenameVerdicts:
    @pytest.mark.parametrize("name", SMALL_TABLE1)
    def test_small_models_exhaustive(self, name):
        stg = TABLE1_BENCHMARKS[name]()
        renamed, mapping = renamed_copy(stg)
        assert set(mapping) == set(stg.signals)
        graph = build_state_graph(renamed)
        expected = TABLE1_VERDICTS[name]
        assert graph.has_usc() == expected["usc"]
        assert graph.has_csc() == expected["csc"]

    @pytest.mark.parametrize("name", LARGE_TABLE1)
    def test_large_models_via_ilp(self, name):
        stg = TABLE1_BENCHMARKS[name]()
        renamed, _ = renamed_copy(stg)
        expected = TABLE1_VERDICTS[name]
        assert check_usc(renamed).holds == expected["usc"]
        assert check_csc(renamed).holds == expected["csc"]

    @pytest.mark.parametrize("name", sorted(TABLE1_BENCHMARKS))
    def test_renaming_is_structure_preserving(self, name):
        stg = TABLE1_BENCHMARKS[name]()
        renamed, _ = renamed_copy(stg)
        assert renamed.net.num_places == stg.net.num_places
        assert renamed.net.num_transitions == stg.net.num_transitions
        assert len(list(renamed.net.arcs())) == len(list(stg.net.arcs()))
