# fuzz regression companion: two parallel places between the same pair of
# transitions.  Only the one actually named <a+,b+> may take the implicit
# form — writing both that way would collapse them into one on re-read.
.model roundtrip
.inputs a
.outputs b
.graph
p0 a+
a+ b+
a+ extra
extra b+
b+ p0
.marking { p0 }
.end
