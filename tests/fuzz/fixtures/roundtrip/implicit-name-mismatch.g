# fuzz regression: write_stg used to compress ANY 1-producer/1-consumer
# place to implicit-arc form, silently renaming this place to <a+,b-> on
# re-read (found by the round-trip oracle after flip_signal_edge renamed a
# producer).  The writer now only compresses when the name matches exactly.
.model roundtrip
.inputs a
.outputs b
.graph
p0 a+
a+ <a-,b->
<a-,b-> b-
b- p0
.marking { p0 }
.end
