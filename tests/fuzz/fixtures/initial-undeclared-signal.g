# fuzz crasher: .initial naming an undeclared signal once escaped as
# NetStructureError from STG.set_initial_value
.model crasher
.outputs z
.graph
p0 z+
z+ p0
.marking { p0 }
.initial bogus=1
.end
