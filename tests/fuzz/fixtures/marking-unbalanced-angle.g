# fuzz crasher: unbalanced '<' in .marking once hung token assembly together
.model crasher
.outputs z
.graph
p0 z+
z+ p0
.marking { <z+,p0 }
.end
