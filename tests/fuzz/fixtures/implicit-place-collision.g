# fuzz crasher: an explicit place spelled like an implicit pair name once
# collided with the implicit place created for the a+ -> b+ arc
# (NetStructureError: duplicate node name)
.model crasher
.inputs a
.outputs b
.graph
<a+,b+> a+
a+ b+
b+ <a+,b+>
.marking { <a+,b+> }
.end
