# fuzz crasher: non-integer token count once escaped as ValueError
.model crasher
.outputs z
.graph
p0 z+
z+ p0
.marking { p0=x }
.end
