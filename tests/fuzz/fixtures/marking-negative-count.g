# fuzz crasher: negative token count once escaped as NetStructureError
.model crasher
.outputs z
.graph
p0 z+
z+ p0
.marking { p0=-1 }
.end
