"""Case generation: determinism, mutation tagging, STG surgery."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import NetStructureError
from repro.fuzz.generate import (
    MUTATORS,
    MUTATORS_BY_NAME,
    case_id,
    derive_rng,
    generate_case,
    iter_cases,
    parse_case_id,
    rebuild_stg,
    renamed_copy,
    shuffled_copy,
)
from repro.models import vme_bus
from repro.stg.hashing import canonical_stg_hash
from repro.stg.stg import STG, SignalEdge

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_isolated(script: str) -> str:
    """Run a snippet in a fresh interpreter (fresh hash seed, fresh state)."""
    return subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        cwd=REPO_ROOT,
    ).stdout.strip()


class TestDeriveRng:
    def test_same_path_same_stream(self):
        assert derive_rng(7, 3).random() == derive_rng(7, 3).random()

    def test_different_paths_diverge(self):
        draws = {
            derive_rng(7, 3).random(),
            derive_rng(7, 4).random(),
            derive_rng(8, 3).random(),
            derive_rng(7, 3, "parser").random(),
        }
        assert len(draws) == 4

    def test_stream_is_process_independent(self):
        # the derivation must not depend on PYTHONHASHSEED or process state
        script = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro.fuzz.generate import derive_rng; "
            "print(repr(derive_rng(42, 0, 'probe').random()))"
        )
        runs = {_run_isolated(script) for _ in range(2)}
        assert len(runs) == 1
        assert runs.pop() == repr(derive_rng(42, 0, "probe").random())


class TestCaseIds:
    def test_roundtrip(self):
        assert parse_case_id(case_id(12, 345)) == (12, 345)

    @pytest.mark.parametrize("bad", ["", "c3", "s1", "s1c2", "sx-cy"])
    def test_malformed_ids_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_case_id(bad)


class TestGenerateCase:
    def test_regeneration_is_byte_identical(self):
        a = generate_case(3, 17)
        b = generate_case(3, 17)
        assert a.base == b.base
        assert a.mutations == b.mutations
        assert canonical_stg_hash(a.stg) == canonical_stg_hash(b.stg)

    def test_regeneration_is_byte_identical_across_processes(self):
        script = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro.fuzz.generate import generate_case; "
            "from repro.stg.hashing import canonical_stg_hash; "
            "case = generate_case(3, 17); "
            "print(canonical_stg_hash(case.stg))"
        )
        assert _run_isolated(script) == canonical_stg_hash(generate_case(3, 17).stg)

    def test_cases_are_independent_of_iteration(self):
        streamed = list(iter_cases(5, 10))
        direct = generate_case(5, 7)
        assert canonical_stg_hash(streamed[7].stg) == canonical_stg_hash(direct.stg)

    def test_preserving_flag_tracks_mutations(self):
        for index in range(40):
            case = generate_case(1, index)
            expected = all(
                MUTATORS_BY_NAME[name].preserving for name in case.mutations
            )
            assert case.preserving == expected

    def test_population_is_diverse(self):
        cases = list(iter_cases(0, 60))
        bases = {case.base.partition("(")[0] for case in cases}
        assert len(bases) >= 5
        assert any(case.mutations for case in cases)
        assert any(not case.mutations for case in cases)


class TestMutators:
    def test_every_mutator_applies_to_vme(self):
        for op in MUTATORS:
            mutated = op.apply(vme_bus(), derive_rng(0, "op", op.name))
            assert mutated is not None, op.name
            assert canonical_stg_hash(mutated) != canonical_stg_hash(vme_bus())

    def test_duplicate_transition_preserves_verdicts(self):
        from repro.stg.stategraph import build_state_graph

        base = vme_bus()
        mutated = MUTATORS_BY_NAME["duplicate_transition"].apply(
            base, derive_rng(0, "dup")
        )
        g0 = build_state_graph(base)
        g1 = build_state_graph(mutated)
        assert g0.has_usc() == g1.has_usc()
        assert g0.has_csc() == g1.has_csc()

    def test_split_place_preserves_consistency(self):
        from repro.stg.consistency import check_consistency

        mutated = MUTATORS_BY_NAME["split_place"].apply(
            vme_bus(), derive_rng(0, "split")
        )
        check_consistency(mutated)  # must not raise

    def test_flip_signal_edge_renames_to_match(self):
        base = vme_bus()
        mutated = MUTATORS_BY_NAME["flip_signal_edge"].apply(
            base, derive_rng(0, "flip")
        )
        net = mutated.net
        for t in range(net.num_transitions):
            label = mutated.label(t)
            if label is None:
                continue
            name = net.transition_name(t)
            assert name == str(label) or name.startswith(f"{label}/")


def _tiny():
    stg = STG("tiny", inputs=["a"], outputs=["b"])
    stg.add_place("p0", tokens=1)
    stg.add_place("p1")
    stg.add_transition("a+", SignalEdge("a", +1))
    stg.add_transition("b+", SignalEdge("b", +1))
    stg.add_arc("p0", "a+")
    stg.add_arc("a+", "p1")
    stg.add_arc("p1", "b+")
    return stg


class TestRebuild:
    def test_identity_rebuild_preserves_hash(self):
        stg = vme_bus()
        assert canonical_stg_hash(rebuild_stg(stg)) == canonical_stg_hash(stg)

    def test_shuffle_preserves_hash(self):
        stg = vme_bus()
        assert canonical_stg_hash(
            shuffled_copy(stg, derive_rng(0, "shuffle"))
        ) == canonical_stg_hash(stg)

    def test_drop_transition_drops_arcs(self):
        stg = _tiny()
        reduced = rebuild_stg(stg, drop_transitions=[0])
        assert not reduced.net.has_transition("a+")
        assert reduced.net.has_place("p0")
        assert list(reduced.net.arcs()) == [("p1", "b+", 1)]

    def test_rename_signals_rewrites_astg_names(self):
        stg = _tiny()
        renamed, mapping = renamed_copy(stg, prefix="x_")
        assert mapping == {"a": "x_a", "b": "x_b"}
        assert renamed.inputs == ["x_a"]
        assert renamed.net.has_transition("x_a+")
        assert str(renamed.label(0)) == "x_a+"

    def test_relabel_transition_validates(self):
        stg = _tiny()
        stg.relabel_transition(0, SignalEdge("b", -1))
        assert str(stg.label(0)) == "b-"
        with pytest.raises(NetStructureError):
            stg.relabel_transition(0, SignalEdge("zz", +1))
        with pytest.raises(NetStructureError):
            stg.relabel_transition(99, None)
