"""Campaign orchestration: determinism, corpus wiring, reproduction."""

import pytest

from repro.engine.jobs import ENGINES, register_engine
from repro.fuzz.campaign import reproduce_case, reproduce_outcome, run_campaign
from repro.fuzz.corpus import CorpusStore
from repro.fuzz.oracle import OracleConfig
from repro.stg.hashing import canonical_stg_hash

#: A cheap schedule for in-suite campaigns: no engine forks, no disk.
LEAN = OracleConfig(
    engines=(), parser_probes=2, facts_every=0, refine_every=0,
    cache_every=0, workers_every=0, max_states=512,
)


class TestDeterminism:
    def test_two_runs_are_identical(self):
        first = run_campaign(3, 10, LEAN)
        second = run_campaign(3, 10, LEAN)
        assert first.summary.to_dict() == second.summary.to_dict()
        assert first.summary.to_json() == second.summary.to_json()
        assert first.divergences == second.divergences
        assert [o.case_id for o in first.outcomes] == [
            o.case_id for o in second.outcomes
        ]

    def test_summary_accounts_for_every_case(self):
        result = run_campaign(0, 15, LEAN)
        summary = result.summary
        assert summary.cases == 15
        assert summary.checkable + sum(summary.skipped.values()) == 15
        assert summary.oracle_runs == sum(o.oracle_runs for o in result.outcomes)

    def test_progress_callback_sees_each_case(self):
        seen = []
        run_campaign(0, 5, LEAN, progress=lambda o: seen.append(o.case_id))
        assert seen == [f"s0-c{i}" for i in range(5)]


class TestCorpusWiring:
    @pytest.fixture
    def liar(self):
        def lying(job):
            from repro.stg.stategraph import build_state_graph

            graph = build_state_graph(job.stg)
            truth = (
                graph.has_usc() if job.property == "usc" else graph.has_csc()
            )
            return (not truth), None, {}

        register_engine("liar", lying)
        yield "liar"
        ENGINES.pop("liar", None)

    def test_divergences_reach_the_corpus(self, liar, tmp_path):
        config = OracleConfig(
            engines=(liar,), properties=("usc",), parser_probes=0,
            facts_every=0, refine_every=0, cache_every=0, workers_every=0,
            max_states=512,
        )
        corpus = CorpusStore(tmp_path / "corpus")
        result = run_campaign(0, 8, config, corpus=corpus)
        summary = result.summary
        assert summary.divergences > 0
        assert summary.unique_signatures >= 1
        assert summary.corpus_new == summary.unique_signatures
        assert summary.corpus_new + summary.corpus_dup == summary.divergences
        assert len(corpus) == summary.corpus_new

    def test_no_corpus_keeps_counters_zero(self, liar):
        config = OracleConfig(
            engines=(liar,), properties=("usc",), parser_probes=0,
            facts_every=0, refine_every=0, cache_every=0, workers_every=0,
            max_states=512,
        )
        summary = run_campaign(0, 4, config).summary
        assert summary.divergences > 0
        assert summary.corpus_new == summary.corpus_dup == 0


class TestReproduce:
    def test_reproduce_case_matches_generation(self):
        case = reproduce_case("s5-c9")
        assert (case.seed, case.index) == (5, 9)
        again = reproduce_case("s5-c9")
        assert canonical_stg_hash(case.stg) == canonical_stg_hash(again.stg)

    def test_reproduce_outcome_matches_campaign(self):
        campaign = run_campaign(2, 4, LEAN)
        for recorded in campaign.outcomes:
            replayed = reproduce_outcome(recorded.case_id, LEAN)
            assert replayed.checkable == recorded.checkable
            assert replayed.skip_reason == recorded.skip_reason
            assert replayed.oracle_runs == recorded.oracle_runs
            assert replayed.divergences == recorded.divergences

    def test_bad_case_id_raises(self):
        with pytest.raises(ValueError):
            reproduce_case("nonsense")
