"""Unit tests for the Petri net kernel (structure and token game)."""

import pytest

from repro.exceptions import NetStructureError, NotEnabledError
from repro.petri.net import PetriNet


@pytest.fixture
def buffer_net():
    net = PetriNet("buffer")
    net.add_place("empty", tokens=1)
    net.add_place("full")
    net.add_transition("put")
    net.add_transition("get")
    net.add_arc("empty", "put")
    net.add_arc("put", "full")
    net.add_arc("full", "get")
    net.add_arc("get", "empty")
    return net


class TestConstruction:
    def test_indices_are_dense(self, buffer_net):
        assert buffer_net.place_index("empty") == 0
        assert buffer_net.place_index("full") == 1
        assert buffer_net.transition_index("put") == 0

    def test_duplicate_name_rejected(self, buffer_net):
        with pytest.raises(NetStructureError):
            buffer_net.add_place("empty")
        with pytest.raises(NetStructureError):
            buffer_net.add_transition("put")
        # cross-kind duplicates rejected too
        with pytest.raises(NetStructureError):
            buffer_net.add_transition("empty")

    def test_arc_must_be_bipartite(self, buffer_net):
        with pytest.raises(NetStructureError):
            buffer_net.add_arc("empty", "full")
        with pytest.raises(NetStructureError):
            buffer_net.add_arc("put", "get")
        with pytest.raises(NetStructureError):
            buffer_net.add_arc("nope", "put")

    def test_negative_tokens_rejected(self):
        net = PetriNet()
        with pytest.raises(NetStructureError):
            net.add_place("p", tokens=-1)

    def test_nonpositive_weight_rejected(self, buffer_net):
        with pytest.raises(NetStructureError):
            buffer_net.add_arc("empty", "get", weight=0)

    def test_presets_and_postsets(self, buffer_net):
        put = buffer_net.transition_index("put")
        assert dict(buffer_net.preset(put)) == {0: 1}
        assert dict(buffer_net.postset(put)) == {1: 1}
        assert dict(buffer_net.place_postset(0)) == {put: 1}
        assert dict(buffer_net.place_preset(1)) == {put: 1}

    def test_arcs_iterator_roundtrip(self, buffer_net):
        arcs = set(buffer_net.arcs())
        assert ("empty", "put", 1) in arcs
        assert ("put", "full", 1) in arcs
        assert len(arcs) == 4

    def test_is_ordinary(self, buffer_net):
        assert buffer_net.is_ordinary()
        buffer_net.add_place("heavy")
        buffer_net.add_arc("put", "heavy", weight=2)
        assert not buffer_net.is_ordinary()

    def test_parallel_arcs_accumulate_weight(self):
        net = PetriNet()
        net.add_place("p", tokens=2)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("p", "t")
        assert dict(net.preset(0)) == {0: 2}


class TestTokenGame:
    def test_enabled_and_fire(self, buffer_net):
        m0 = buffer_net.initial_marking
        put = buffer_net.transition_index("put")
        get = buffer_net.transition_index("get")
        assert buffer_net.enabled(m0) == [put]
        m1 = buffer_net.fire(m0, put)
        assert m1.counts == (0, 1)
        assert buffer_net.enabled(m1) == [get]

    def test_fire_disabled_raises(self, buffer_net):
        m0 = buffer_net.initial_marking
        get = buffer_net.transition_index("get")
        with pytest.raises(NotEnabledError):
            buffer_net.fire(m0, get)

    def test_fire_sequence(self, buffer_net):
        m0 = buffer_net.initial_marking
        put = buffer_net.transition_index("put")
        get = buffer_net.transition_index("get")
        m = buffer_net.fire_sequence(m0, [put, get, put])
        assert m.counts == (0, 1)

    def test_fire_by_name(self, buffer_net):
        m1 = buffer_net.fire_by_name(buffer_net.initial_marking, "put")
        assert m1.counts == (0, 1)

    def test_set_tokens(self, buffer_net):
        buffer_net.set_tokens("full", 1)
        m0 = buffer_net.initial_marking
        assert m0.counts == (1, 1)
        with pytest.raises(NetStructureError):
            buffer_net.set_tokens("full", -1)


class TestCopy:
    def test_copy_is_deep(self, buffer_net):
        clone = buffer_net.copy("clone")
        clone.set_tokens("full", 1)
        assert buffer_net.initial_marking.counts == (1, 0)
        assert clone.initial_marking.counts == (1, 1)
        assert clone.name == "clone"

    def test_copy_preserves_structure(self, buffer_net):
        clone = buffer_net.copy()
        assert clone.places == buffer_net.places
        assert clone.transitions == buffer_net.transitions
        assert set(clone.arcs()) == set(buffer_net.arcs())

    def test_weighted_arcs_survive_copy(self):
        net = PetriNet()
        net.add_place("p", tokens=3)
        net.add_transition("t")
        net.add_arc("p", "t", weight=3)
        clone = net.copy()
        assert dict(clone.preset(0)) == {0: 3}
