"""Tests for the plain-net text format parser/writer."""

import pytest

from repro.exceptions import ParseError
from repro.petri.generators import cycle, fork_join
from repro.petri.parser import parse_net, write_net

SAMPLE = """
.net buffer
.places p0=1 p1 p2
.transitions produce consume
.arcs
p0 produce
produce p1
p1 consume
consume p2
.end
"""


class TestParse:
    def test_basic(self):
        net = parse_net(SAMPLE)
        assert net.name == "buffer"
        assert net.num_places == 3
        assert net.num_transitions == 2
        assert net.initial_marking.counts == (1, 0, 0)

    def test_comments_and_blank_lines(self):
        text = SAMPLE.replace(".arcs", ".arcs\n# a comment\n\n")
        assert parse_net(text).num_places == 3

    def test_multi_target_arc_line(self):
        text = """
.net fan
.places a=1 b c
.transitions t
.arcs
a t
t b c
.end
"""
        net = parse_net(text)
        t = net.transition_index("t")
        assert set(net.postset(t)) == {net.place_index("b"), net.place_index("c")}

    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse_net(".net x\n.places p\n.transitions t\n.arcs\np t\n")

    def test_content_after_end(self):
        with pytest.raises(ParseError):
            parse_net(SAMPLE + "\nstray")

    def test_bad_token_count(self):
        with pytest.raises(ParseError):
            parse_net(".net x\n.places p=abc\n.end")

    def test_unknown_directive(self):
        with pytest.raises(ParseError):
            parse_net(".net x\n.bogus\n.end")

    def test_arc_outside_arcs_section(self):
        with pytest.raises(ParseError):
            parse_net(".net x\n.places p\n.transitions t\np t\n.end")

    def test_arc_needs_two_tokens(self):
        with pytest.raises(ParseError) as err:
            parse_net(".net x\n.places p\n.transitions t\n.arcs\np\n.end")
        assert "line 5" in str(err.value)

    def test_unknown_node_in_arc(self):
        with pytest.raises(ParseError):
            parse_net(".net x\n.places p\n.transitions t\n.arcs\np nope\n.end")


class TestRoundtrip:
    @pytest.mark.parametrize(
        "net_builder", [lambda: cycle(4, tokens=2), lambda: fork_join(3)]
    )
    def test_write_then_parse(self, net_builder):
        original = net_builder()
        recovered = parse_net(write_net(original))
        assert recovered.places == original.places
        assert recovered.transitions == original.transitions
        assert sorted(recovered.arcs()) == sorted(original.arcs())
        assert recovered.initial_marking == original.initial_marking
