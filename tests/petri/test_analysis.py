"""Tests for structural and behavioural net analysis."""

import numpy as np
import pytest

from repro.exceptions import UnboundedNetError
from repro.petri.analysis import (
    bound,
    has_structural_conflicts,
    is_bounded,
    is_dynamically_conflict_free,
    is_free_choice,
    is_marked_graph,
    is_safe,
    place_invariants,
    transition_invariants,
)
from repro.petri.generators import chain, choice, cycle, fork_join
from repro.petri.incidence import incidence_matrix
from repro.petri.net import PetriNet


def unbounded_net():
    net = PetriNet("grow")
    net.add_place("p", tokens=1)
    net.add_place("q")
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "p")
    net.add_arc("t", "q")
    return net


class TestBoundedness:
    def test_safe_nets(self, simple_net, ring_net, fork_net):
        assert is_safe(simple_net)
        assert is_safe(ring_net)
        assert is_safe(fork_net)

    def test_multi_token_cycle_is_2_bounded(self):
        net = cycle(3, tokens=2)
        # a trailing token can enter a place before the leading one leaves
        assert not is_safe(net)
        assert is_bounded(net)
        assert bound(net) == 2

    def test_genuinely_2bounded(self):
        net = PetriNet()
        net.add_place("a", tokens=2)
        net.add_place("b")
        net.add_transition("t")
        net.add_arc("a", "t")
        net.add_arc("t", "b")
        assert not is_safe(net)
        assert is_bounded(net)
        assert bound(net) == 2

    def test_unbounded(self):
        assert not is_bounded(unbounded_net())
        with pytest.raises(UnboundedNetError):
            bound(unbounded_net())

    def test_bound_of_safe_net(self, ring_net):
        assert bound(ring_net) == 1


class TestStructuralClasses:
    def test_marked_graph(self, simple_net, ring_net):
        assert is_marked_graph(simple_net)
        assert is_marked_graph(ring_net)

    def test_choice_net_not_marked_graph(self, choice_net):
        assert not is_marked_graph(choice_net)
        assert has_structural_conflicts(choice_net)

    def test_free_choice(self, choice_net):
        assert is_free_choice(choice_net)

    def test_non_free_choice(self):
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b", tokens=1)
        net.add_transition("t1")
        net.add_transition("t2")
        net.add_arc("a", "t1")
        net.add_arc("a", "t2")
        net.add_arc("b", "t2")  # t1, t2 share a but have different presets
        assert not is_free_choice(net)

    def test_dynamic_conflict_freeness(self, simple_net, choice_net):
        assert is_dynamically_conflict_free(simple_net)
        assert not is_dynamically_conflict_free(choice_net)

    def test_structurally_conflicting_but_dynamically_free(self):
        # two consumers of p, but the second can never be enabled
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_place("never")  # no token ever
        net.add_place("done")
        net.add_transition("use")
        net.add_transition("blocked")
        net.add_arc("p", "use")
        net.add_arc("use", "done")
        net.add_arc("p", "blocked")
        net.add_arc("never", "blocked")
        assert has_structural_conflicts(net)
        assert is_dynamically_conflict_free(net)


class TestInvariants:
    def test_cycle_has_token_conservation(self, ring_net):
        invariants = place_invariants(ring_net)
        matrix = incidence_matrix(ring_net)
        assert invariants, "a cycle conserves its token count"
        for y in invariants:
            assert not (y @ matrix).any()

    def test_cycle_t_invariant_is_full_rotation(self, ring_net):
        invariants = transition_invariants(ring_net)
        matrix = incidence_matrix(ring_net)
        assert invariants
        for x in invariants:
            assert not (matrix @ x).any()

    def test_chain_has_no_t_invariant(self, simple_net):
        # acyclic net: only the zero vector satisfies I x = 0
        assert transition_invariants(simple_net) == []

    def test_fork_join_invariants_cover_all_places(self, fork_net):
        invariants = place_invariants(fork_net)
        covered = set()
        for y in invariants:
            covered.update(np.nonzero(y)[0])
        assert covered == set(range(fork_net.num_places))


class TestInvariantsWeightedAndDisconnected:
    """Coverage for non-plain arcs and non-connected nets.

    The kernel computation never assumes unit weights or connectivity, but
    until now no test said so.
    """

    @staticmethod
    def weighted_net():
        # 2 tokens of p are traded for 1 token of q and back:
        # the weighted conservation law is 1*p + 2*q.
        net = PetriNet("weighted")
        net.add_place("p", tokens=2)
        net.add_place("q")
        net.add_transition("pack")
        net.add_transition("unpack")
        net.add_arc("p", "pack", weight=2)
        net.add_arc("pack", "q")
        net.add_arc("q", "unpack")
        net.add_arc("unpack", "p", weight=2)
        return net

    def test_weighted_place_invariant(self):
        net = self.weighted_net()
        invariants = place_invariants(net)
        matrix = incidence_matrix(net)
        assert len(invariants) == 1
        (y,) = invariants
        assert not (y @ matrix).any()
        # the weighted conservation law, in lowest terms and sign-normalised
        assert y.tolist() == [1, 2]

    def test_weighted_transition_invariant(self):
        net = self.weighted_net()
        invariants = transition_invariants(net)
        matrix = incidence_matrix(net)
        assert len(invariants) == 1
        (x,) = invariants
        assert not (matrix @ x).any()
        assert x.tolist() == [1, 1]  # one pack + one unpack returns M0

    @staticmethod
    def disconnected_net():
        # two independent 2-cycles with no shared node
        net = PetriNet("islands")
        for island in ("a", "b"):
            net.add_place(f"{island}0", tokens=1)
            net.add_place(f"{island}1")
            net.add_transition(f"{island}_go")
            net.add_transition(f"{island}_back")
            net.add_arc(f"{island}0", f"{island}_go")
            net.add_arc(f"{island}_go", f"{island}1")
            net.add_arc(f"{island}1", f"{island}_back")
            net.add_arc(f"{island}_back", f"{island}0")
        return net

    def test_disconnected_components_each_conserved(self):
        net = self.disconnected_net()
        invariants = place_invariants(net)
        matrix = incidence_matrix(net)
        assert len(invariants) == 2
        for y in invariants:
            assert not (y @ matrix).any()
        # each island's token count is conserved independently: some basis
        # combination isolates each component
        supports = [frozenset(np.nonzero(y)[0]) for y in invariants]
        island_a = frozenset((net.place_index("a0"), net.place_index("a1")))
        island_b = frozenset((net.place_index("b0"), net.place_index("b1")))
        assert set(supports) == {island_a, island_b}

    def test_disconnected_t_invariants(self):
        net = self.disconnected_net()
        invariants = transition_invariants(net)
        matrix = incidence_matrix(net)
        assert len(invariants) == 2
        for x in invariants:
            assert not (matrix @ x).any()


class TestKernelDeterminism:
    """Regression: the integer kernel basis is canonical.

    Each basis vector is reduced to lowest terms with its first non-zero
    entry positive, and the basis is sorted lexicographically — so callers
    (facts engine, lint certificates) see the same basis on every run and
    platform.
    """

    def test_basis_is_sign_normalised_and_sorted(self, fork_net):
        for compute, net in (
            (place_invariants, fork_net),
            (place_invariants, cycle(5)),
            (transition_invariants, cycle(5)),
        ):
            basis = compute(net)
            for y in basis:
                nonzero = np.flatnonzero(y)
                assert nonzero.size, "zero vectors never enter the basis"
                assert y[nonzero[0]] > 0
                gcd = np.gcd.reduce(np.abs(y[nonzero]))
                assert gcd == 1, "basis vectors are in lowest terms"
            as_lists = [y.tolist() for y in basis]
            assert as_lists == sorted(as_lists)

    def test_repeated_calls_identical(self, fork_net):
        first = [y.tolist() for y in place_invariants(fork_net)]
        for _ in range(5):
            assert [y.tolist() for y in place_invariants(fork_net)] == first
