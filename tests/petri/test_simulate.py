"""Tests for the token-game simulator and waveform recorder."""

import pytest

from repro.models import vme_bus
from repro.petri.generators import chain, cycle, fork_join
from repro.petri.simulate import (
    estimate_reachable_states,
    random_walk,
    stg_random_walk,
)


class TestRandomWalk:
    def test_walk_is_replayable(self):
        net = cycle(5)
        trace = random_walk(net, 50, seed=1)
        marking = net.initial_marking
        for i, transition in enumerate(trace.transitions):
            assert net.is_enabled(marking, transition)
            marking = net.fire(marking, transition)
            assert marking == trace.markings[i + 1]
        assert trace.final_marking() == marking

    def test_deadlock_stops_walk(self):
        trace = random_walk(chain(3), 100, seed=0)
        assert trace.deadlocked
        assert trace.length == 3

    def test_live_net_runs_full_length(self):
        trace = random_walk(cycle(4), 100, seed=0)
        assert not trace.deadlocked
        assert trace.length == 100

    def test_deterministic_for_seed(self):
        a = random_walk(fork_join(3), 40, seed=7)
        b = random_walk(fork_join(3), 40, seed=7)
        assert a.transitions == b.transitions

    def test_transition_names(self):
        trace = random_walk(chain(2), 10, seed=0)
        assert trace.transition_names() == ["t0", "t1"]


class TestWaveform:
    def test_vme_waveform_consistent(self, vme):
        trace, waveform = stg_random_walk(vme, 200, seed=3)
        # replay: at each step the recorded value must match the signal
        # change count parity
        counts = {s: 0 for s in vme.signals}
        for step, transition in enumerate(trace.transitions, start=1):
            label = vme.label(transition)
            counts[label.signal] += label.polarity
            for signal in vme.signals:
                assert waveform.value_at(signal, step) == counts[signal]

    def test_values_binary(self, vme):
        _, waveform = stg_random_walk(vme, 300, seed=11)
        for signal in vme.signals:
            for _, value in waveform.changes[signal]:
                assert value in (0, 1)

    def test_render_has_row_per_signal(self, vme):
        _, waveform = stg_random_walk(vme, 100, seed=2)
        render = waveform.render()
        assert len(render.splitlines()) == len(vme.signals)

    def test_initial_code_override(self, vme):
        _, waveform = stg_random_walk(
            vme, 0, seed=0, initial_code={"dsr": 1}
        )
        assert waveform.value_at("dsr", 0) == 1


class TestEstimate:
    def test_lower_bound_on_states(self):
        from repro.petri.reachability import explore

        net = fork_join(3)
        estimate = estimate_reachable_states(net, walks=80, steps=60, seed=5)
        exact = explore(net).num_states
        assert estimate <= exact
        assert estimate >= exact // 2  # walks cover most of this tiny space
