"""Tests for the Karp-Miller coverability graph."""

import pytest

from repro.petri.coverability import OMEGA, CoverabilityGraph, coverability_graph
from repro.petri.generators import chain, cycle, fork_join
from repro.petri.marking import Marking
from repro.petri.net import PetriNet


def unbounded_net():
    net = PetriNet("grow")
    net.add_place("p", tokens=1)
    net.add_place("q")
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "p")
    net.add_arc("t", "q")
    return net


class TestBoundedNets:
    @pytest.mark.parametrize(
        "builder", [lambda: chain(3), lambda: cycle(4), lambda: fork_join(3)]
    )
    def test_bounded_detected(self, builder):
        graph = coverability_graph(builder())
        assert graph.is_bounded()
        assert graph.unbounded_places() == []

    def test_nodes_match_reachability_for_bounded(self):
        from repro.petri.reachability import explore

        net = fork_join(3)
        graph = coverability_graph(net)
        reach = explore(net)
        assert graph.num_nodes == reach.num_states


class TestUnboundedNets:
    def test_omega_appears(self):
        graph = coverability_graph(unbounded_net())
        assert not graph.is_bounded()
        assert graph.unbounded_places() == ["q"]

    def test_covers_arbitrary_targets(self):
        net = unbounded_net()
        graph = coverability_graph(net)
        # q can hold any number of tokens (with p = 1)
        assert graph.covers(Marking((1, 50)))
        # but never 2 tokens in p
        assert not graph.covers(Marking((2, 0)))

    def test_two_counter_net(self):
        net = PetriNet("two")
        net.add_place("ctl", tokens=1)
        net.add_place("a")
        net.add_place("b")
        net.add_transition("make_a")
        net.add_transition("swap")
        net.add_arc("ctl", "make_a")
        net.add_arc("make_a", "ctl")
        net.add_arc("make_a", "a")
        net.add_arc("a", "swap")
        net.add_arc("swap", "b")
        graph = coverability_graph(net)
        assert set(graph.unbounded_places()) == {"a", "b"}


class TestCoverQueries:
    def test_bounded_cover(self):
        net = cycle(3)
        graph = coverability_graph(net)
        assert graph.covers(Marking((1, 0, 0)))
        assert graph.covers(Marking((0, 1, 0)))
        assert not graph.covers(Marking((1, 1, 0)))

    def test_budget(self):
        with pytest.raises(RuntimeError):
            coverability_graph(fork_join(6), max_nodes=5)
