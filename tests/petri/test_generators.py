"""Tests for the structured/random net generators."""

import pytest

from repro.petri.analysis import is_marked_graph, is_safe
from repro.petri.generators import chain, choice, cycle, fork_join, random_safe_net
from repro.petri.reachability import explore


class TestChain:
    def test_structure(self):
        net = chain(5)
        assert net.num_places == 6
        assert net.num_transitions == 5
        assert is_marked_graph(net)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            chain(0)


class TestCycle:
    def test_single_token_live_and_safe(self):
        net = cycle(6, tokens=1)
        assert is_safe(net)
        assert not explore(net).deadlocks()

    def test_multi_token_is_k_bounded_not_safe(self):
        from repro.petri.analysis import bound

        net = cycle(6, tokens=2)
        assert not is_safe(net)  # no capacity back-pressure
        assert bound(net) == 2
        assert not explore(net).deadlocks()

    def test_invalid(self):
        with pytest.raises(ValueError):
            cycle(0)
        with pytest.raises(ValueError):
            cycle(3, tokens=4)


class TestForkJoin:
    @pytest.mark.parametrize("width", [1, 2, 5])
    def test_state_space_size(self, width):
        graph = explore(fork_join(width))
        assert graph.num_states == 2 ** width + 2

    def test_safe(self):
        assert is_safe(fork_join(4))

    def test_invalid(self):
        with pytest.raises(ValueError):
            fork_join(0)


class TestChoice:
    def test_branch_count(self):
        net = choice(4, length=2)
        graph = explore(net)
        # start + 4 branches * 1 intermediate + done
        assert graph.num_states == 1 + 4 + 1
        assert is_safe(net)

    def test_invalid(self):
        with pytest.raises(ValueError):
            choice(0)
        with pytest.raises(ValueError):
            choice(2, length=0)


class TestRandomSafeNet:
    @pytest.mark.parametrize("seed", range(6))
    def test_always_safe(self, seed):
        net = random_safe_net(num_branches=3, branch_length=3, seed=seed)
        assert is_safe(net, max_states=50_000)

    def test_deterministic_for_seed(self):
        a = random_safe_net(seed=42)
        b = random_safe_net(seed=42)
        assert a.places == b.places
        assert a.transitions == b.transitions
        assert sorted(a.arcs()) == sorted(b.arcs())
