"""Tests for explicit reachability graph exploration."""

import pytest

from repro.exceptions import UnboundedNetError
from repro.petri.generators import chain, cycle, fork_join
from repro.petri.net import PetriNet
from repro.petri.reachability import explore


class TestExplore:
    def test_chain_states(self):
        graph = explore(chain(3))
        # token moves along 4 places: 4 states
        assert graph.num_states == 4
        assert graph.num_edges == 3
        assert len(graph.deadlocks()) == 1

    def test_cycle_is_live(self):
        graph = explore(cycle(5, tokens=1))
        assert graph.num_states == 5
        assert graph.deadlocks() == []

    def test_fork_join_exponential(self):
        graph = explore(fork_join(4))
        # each of the 4 branches is independently in one of 2 local states
        # between fork and join, plus start/done bookkeeping
        assert graph.num_states == 2 ** 4 + 2

    def test_initial_marking_is_state_zero(self, simple_net):
        graph = explore(simple_net)
        assert graph.markings[0] == simple_net.initial_marking
        assert simple_net.initial_marking in graph

    def test_max_states_guard(self):
        with pytest.raises(UnboundedNetError):
            explore(fork_join(6), max_states=10)

    def test_unbounded_detection_via_place_cap(self):
        net = PetriNet("unbounded")
        net.add_place("p", tokens=1)
        net.add_place("q")
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "p")
        net.add_arc("t", "q")  # q grows forever
        with pytest.raises(UnboundedNetError):
            explore(net, max_tokens_per_place=3)


class TestPaths:
    def test_path_to_state(self):
        net = chain(3)
        graph = explore(net)
        last = graph.num_states - 1
        path = graph.path_to(last)
        assert [net.transition_name(t) for t in path] == ["t0", "t1", "t2"]
        # replaying the path reaches the state
        m = net.fire_sequence(net.initial_marking, path)
        assert m == graph.markings[last]

    def test_path_to_initial_is_empty(self, simple_net):
        graph = explore(simple_net)
        assert graph.path_to(0) == []

    def test_path_to_unreachable_raises(self):
        # build a graph, then ask for a state index that exists but pretend
        # disconnected: easiest is a fresh graph with a bogus target
        graph = explore(chain(1))
        with pytest.raises(ValueError):
            graph.path_to(99)
