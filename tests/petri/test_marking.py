"""Unit and property tests for Marking (multiset semantics, lex order)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.petri.marking import Marking

vectors = st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=8)


class TestBasics:
    def test_construction_and_access(self):
        m = Marking((1, 0, 2))
        assert m[0] == 1
        assert m[2] == 2
        assert len(m) == 3
        assert m.total() == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Marking((1, -1))

    def test_from_dict(self):
        m = Marking.from_dict(4, {1: 2, 3: 1})
        assert m.counts == (0, 2, 0, 1)

    def test_empty(self):
        assert Marking.empty(3).counts == (0, 0, 0)

    def test_support(self):
        m = Marking((0, 1, 0, 3))
        assert list(m.support()) == [1, 3]
        assert m.support_set() == frozenset({1, 3})

    def test_as_dict(self):
        assert Marking((0, 2, 1)).as_dict() == {1: 2, 2: 1}

    def test_max_count(self):
        assert Marking((0, 3, 1)).max_count() == 3
        assert Marking(()).max_count() == 0


class TestAlgebra:
    def test_add_subtract(self):
        m = Marking((1, 1))
        m2 = m.add({0: 1}).subtract({1: 1})
        assert m2.counts == (2, 0)
        # original untouched (immutability)
        assert m.counts == (1, 1)

    def test_subtract_underflow_raises(self):
        with pytest.raises(ValueError):
            Marking((0, 1)).subtract({0: 1})

    def test_covers(self):
        m = Marking((2, 1, 0))
        assert m.covers({0: 2, 1: 1})
        assert not m.covers({2: 1})

    def test_dominates(self):
        a, b = Marking((2, 1)), Marking((1, 1))
        assert a.dominates(b)
        assert a.strictly_dominates(b)
        assert not b.dominates(a)
        assert not a.strictly_dominates(a)


class TestOrderAndHash:
    def test_lex_order_matches_tuples(self):
        assert Marking((0, 1)) < Marking((1, 0))
        assert Marking((1, 0)) <= Marking((1, 0))

    def test_hash_consistency(self):
        assert hash(Marking((1, 2))) == hash(Marking((1, 2)))
        assert Marking((1, 2)) == Marking((1, 2))
        assert Marking((1, 2)) != Marking((2, 1))

    @given(vectors, vectors)
    def test_lex_total_order_property(self, xs, ys):
        a, b = Marking(xs), Marking(ys)
        assert (a < b) == (tuple(xs) < tuple(ys))

    @given(vectors)
    def test_add_then_subtract_roundtrip(self, xs):
        m = Marking(xs)
        delta = {i: 1 for i in range(len(xs))}
        assert m.add(delta).subtract(delta) == m

    @given(vectors)
    def test_dominates_reflexive(self, xs):
        m = Marking(xs)
        assert m.dominates(m)
