"""Tests for the incidence matrix and the marking equation."""

import numpy as np
import pytest

from repro.petri.generators import chain, cycle
from repro.petri.incidence import (
    incidence_matrix,
    marking_equation_feasible,
    parikh_vector,
    state_equation_result,
)
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.reachability import explore


class TestIncidenceMatrix:
    def test_shape_and_entries(self, simple_net):
        matrix = incidence_matrix(simple_net)
        assert matrix.shape == (3, 2)
        # t0 consumes p0, produces p1
        assert matrix[0, 0] == -1
        assert matrix[1, 0] == 1
        assert matrix[2, 0] == 0

    def test_self_loop_cancels(self):
        net = PetriNet()
        net.add_place("p", tokens=1)
        net.add_transition("t")
        net.add_arc("p", "t")
        net.add_arc("t", "p")
        assert incidence_matrix(net)[0, 0] == 0

    def test_weighted_arcs(self):
        net = PetriNet()
        net.add_place("p", tokens=2)
        net.add_place("q")
        net.add_transition("t")
        net.add_arc("p", "t", weight=2)
        net.add_arc("t", "q", weight=3)
        matrix = incidence_matrix(net)
        assert matrix[0, 0] == -2
        assert matrix[1, 0] == 3


class TestStateEquation:
    def test_firing_sequence_satisfies_equation(self, ring_net):
        sequence = [0, 1, 2]
        parikh = parikh_vector(ring_net, sequence)
        final = ring_net.fire_sequence(ring_net.initial_marking, sequence)
        predicted = state_equation_result(ring_net, ring_net.initial_marking, parikh)
        assert np.array_equal(predicted, np.array(final.counts))

    def test_every_reachable_marking_feasible(self):
        net = cycle(4)
        graph = explore(net)
        for marking in graph.markings:
            assert marking_equation_feasible(net, marking)

    def test_infeasible_marking_rejected(self, simple_net):
        # two tokens cannot appear from one
        impossible = Marking((1, 1, 1))
        assert not marking_equation_feasible(simple_net, impossible)

    def test_feasible_but_unreachable_spurious_solution(self):
        # the classical gap: the equation is necessary, not sufficient.
        # two places swap tokens through a cycle that is never enabled.
        net = PetriNet()
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_place("lock")  # required by both transitions, never marked
        net.add_transition("ab")
        net.add_transition("ba")
        net.add_arc("a", "ab")
        net.add_arc("lock", "ab")
        net.add_arc("ab", "b")
        net.add_arc("ab", "lock")
        net.add_arc("b", "ba")
        net.add_arc("ba", "a")
        target = Marking((0, 1, 0))
        # unreachable (lock never marked) but the equation has a solution
        graph = explore(net)
        assert target not in graph.index
        assert marking_equation_feasible(net, target)

    def test_acyclic_net_equation_exact(self, simple_net):
        # on acyclic nets feasibility == reachability (paper Section 2.2)
        graph = explore(simple_net)
        reachable = set(graph.markings)
        all_markings = [
            Marking((a, b, c)) for a in (0, 1) for b in (0, 1) for c in (0, 1)
        ]
        for marking in all_markings:
            assert marking_equation_feasible(simple_net, marking) == (
                marking in reachable
            )
