"""Golden equivalence: use_facts must never change a verdict or witness.

The facts-driven capacity tables and prescreens only tighten *bounds* and
skip provably empty searches — branching order is untouched, so the
verdicts, witnesses and USC-only candidate counts must be byte-identical
to the plain run on every model.  The two slowest CF instances are left to
the benchmark harness; everything else from Table 1 is pinned here.
"""

import pytest

from repro.analysis import analyze, clear_memo
from repro.core.verifier import check_csc, check_usc
from repro.models import TABLE1_BENCHMARKS

FAST_MODELS = [
    name
    for name in TABLE1_BENCHMARKS
    if name not in ("CF-SYM-D-CSC", "CF-ASYM-B-CSC")
]


def setup_function(_):
    clear_memo()


def _fingerprint(result):
    witness = result.witness
    return (
        result.holds,
        result.usc_only_candidates,
        None
        if witness is None
        else (
            witness.kind,
            witness.code_a,
            witness.code_b,
            tuple(witness.trace_a),
            tuple(witness.trace_b),
        ),
    )


@pytest.mark.parametrize("name", FAST_MODELS)
def test_usc_verdicts_identical(name):
    stg = TABLE1_BENCHMARKS[name]()
    plain = check_usc(stg)
    with_facts = check_usc(stg, use_facts=True)
    assert _fingerprint(with_facts) == _fingerprint(plain)


@pytest.mark.parametrize("name", FAST_MODELS)
def test_csc_verdicts_identical(name):
    stg = TABLE1_BENCHMARKS[name]()
    plain = check_csc(stg)
    with_facts = check_csc(stg, use_facts=True)
    assert _fingerprint(with_facts) == _fingerprint(plain)


@pytest.mark.parametrize("name", ["RING", "LAZYRING", "DUP-MOD-A"])
def test_all_facts_verify(name):
    stg = TABLE1_BENCHMARKS[name]()
    assert analyze(stg).verify_all(stg) == []
