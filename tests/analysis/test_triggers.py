"""Trigger/lock edge relations."""

from repro.analysis import FACT_LOCK, FACT_TRIGGER, analyze, clear_memo, verify_fact
from repro.analysis.triggers import lock_facts, trigger_facts
from repro.models import TABLE1_BENCHMARKS
from repro.models._build import connect
from repro.stg.stg import STG


def setup_function(_):
    clear_memo()


def handshake():
    """req+ -> ack+ -> req- -> ack- in a single loop."""
    stg = STG("handshake", inputs=["req"], outputs=["ack"])
    connect(stg, "req+", "ack+")
    connect(stg, "ack+", "req-")
    connect(stg, "req-", "ack-")
    connect(stg, "ack-", "req+", marked=True)
    return stg


class TestTriggers:
    def test_handshake_chain(self):
        stg = handshake()
        pairs = {tuple(f.subjects) for f in trigger_facts(stg)}
        assert ("req+", "ack+") in pairs
        assert ("ack+", "req-") in pairs
        assert ("req-", "ack-") in pairs
        assert ("ack-", "req+") in pairs
        # the chain is one-directional
        assert ("ack+", "req+") not in pairs

    def test_facts_verify(self):
        stg = handshake()
        for fact in trigger_facts(stg):
            assert verify_fact(stg, fact), fact.claim


class TestLocks:
    def test_handshake_has_no_locks(self):
        assert lock_facts(handshake()) == []

    def test_choice_creates_lock(self):
        # a+ and b+ compete for the single token on a shared choice place
        stg = STG("pick", inputs=[], outputs=["a", "b"])
        from repro.models._build import edge

        edge(stg, "a+")
        edge(stg, "b+")
        stg.add_place("decide", tokens=1)
        stg.add_arc("decide", "a+")
        stg.add_arc("decide", "b+")
        facts = lock_facts(stg)
        pairs = {tuple(fact.subjects) for fact in facts}
        assert ("a+", "b+") in pairs
        for fact in facts:
            assert verify_fact(stg, fact), fact.claim


class TestOnBenchmarks:
    def test_all_trigger_lock_facts_verify(self):
        stg = TABLE1_BENCHMARKS["LAZYRING"]()
        facts = analyze(stg)
        relational = facts.of_kind(FACT_TRIGGER) + facts.of_kind(FACT_LOCK)
        assert relational, "LAZYRING should produce edge-relation facts"
        for fact in relational:
            assert verify_fact(stg, fact), fact.claim
