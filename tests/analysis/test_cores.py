"""Conflict-core extraction from real verifier witnesses."""

import pytest

from repro.analysis import clear_memo, verify_fact
from repro.analysis.cores import extract_core
from repro.core.verifier import check_csc, check_usc
from repro.models import TABLE1_BENCHMARKS


def setup_function(_):
    clear_memo()


@pytest.fixture(scope="module")
def lazyring_usc():
    stg = TABLE1_BENCHMARKS["LAZYRING"]()
    result = check_usc(stg)
    assert not result.holds and result.witness is not None
    return stg, result.witness


class TestExtractCore:
    def test_core_from_usc_witness(self, lazyring_usc):
        stg, witness = lazyring_usc
        core = extract_core(stg, witness)
        if core is None:
            pytest.skip("witness is non-nested: no window to shrink")
        assert core.property_name == "usc"
        assert core.window
        assert core.signals
        # the shrunk window only mentions signals of the STG
        for signal in core.signals:
            assert signal in stg.signals

    def test_core_fact_is_replayable(self, lazyring_usc):
        stg, witness = lazyring_usc
        core = extract_core(stg, witness)
        if core is None or core.fact is None:
            pytest.skip("no replayable fact for this witness shape")
        assert verify_fact(stg, core.fact), core.fact.claim

    def test_describe_mentions_property_and_signals(self, lazyring_usc):
        stg, witness = lazyring_usc
        core = extract_core(stg, witness)
        if core is None:
            pytest.skip("witness is non-nested")
        text = core.describe()
        assert "USC core" in text
        for signal in core.signals:
            assert signal in text

    def test_csc_witness_core(self):
        stg = TABLE1_BENCHMARKS["DUP-4PH-A"]()
        result = check_csc(stg)
        assert not result.holds and result.witness is not None
        core = extract_core(stg, result.witness)
        if core is None:
            pytest.skip("witness is non-nested")
        assert core.property_name == "csc"
        if core.fact is not None:
            assert verify_fact(stg, core.fact)

    def test_rejects_foreign_witness_kinds(self, lazyring_usc):
        stg, witness = lazyring_usc

        class FakeWitness:
            kind = "normalcy"
            trace_a = witness.trace_a
            trace_b = witness.trace_b

        assert extract_core(stg, FakeWitness()) is None
