"""A4xx lint tier: facts-backed findings on crafted nets."""

from pathlib import Path

from repro.analysis import clear_memo
from repro.lint import SEVERITY_INFO, SEVERITY_WARNING, run_lint
from repro.stg.parser import parse_stg

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

AUTOCONC_G = """
.model autoconc
.outputs z
.graph
z+ p1
p1 z+
z+/2 p2
p2 z+/2
.marking { p1 p2 }
.end
"""

TOGGLE_G = """
.model clean-toggle
.outputs z
.graph
z+ p1
p1 z-
z- p0
p0 z+
.marking { p0 }
.end
"""

DEAD_G = """
.model deadnet
.outputs z
.graph
z+ p1
p1 z-
z- p0
p0 z+
q0 z+/2
z+/2 q0
.marking { p0 }
.end
"""

DRAINED_G = """
.model drained
.outputs z
.graph
p z+
z+ q
q z-
z- q
.marking { q }
.end
"""


def setup_function(_):
    clear_memo()


class TestA401:
    def test_fires_on_autoconcurrent_edges(self):
        report = run_lint(parse_stg(AUTOCONC_G), rules=["A401"])
        findings = report.of_rule("A401")
        assert findings
        assert all(d.severity == SEVERITY_INFO for d in findings)

    def test_silent_when_invariant_separates(self):
        # the toggle's single token proves z+ and z- never co-enabled
        report = run_lint(parse_stg(TOGGLE_G), rules=["A401"])
        assert report.of_rule("A401") == []


class TestA402:
    def test_fires_on_dead_transition(self):
        report = run_lint(parse_stg(DEAD_G), rules=["A402"])
        findings = report.of_rule("A402")
        assert [d.subject for d in findings] == ["z+/2"]
        assert all(d.severity == SEVERITY_WARNING for d in findings)

    def test_silent_on_live_net(self):
        report = run_lint(parse_stg(TOGGLE_G), rules=["A402"])
        assert report.of_rule("A402") == []


class TestA403:
    def test_fires_on_drained_siphon(self):
        report = run_lint(parse_stg(DRAINED_G), rules=["A403"])
        findings = report.of_rule("A403")
        assert findings
        assert any("p" in d.subject for d in findings)

    def test_silent_when_commoner_holds(self):
        # the toggle's siphon contains its own marked trap
        report = run_lint(parse_stg(TOGGLE_G), rules=["A403"])
        assert report.of_rule("A403") == []


class TestGating:
    def test_size_budget_silences_tier(self):
        report = run_lint(parse_stg(AUTOCONC_G), rules=["A401"], size_budget=1)
        assert report.of_rule("A401") == []

    def test_examples_keep_exit_zero(self):
        for path in sorted(EXAMPLES.glob("*.g")):
            report = run_lint(parse_stg(path.read_text(), filename=str(path)))
            assert report.exit_code == 0, f"{path.name}: {report.exit_code}"
