"""The ``repro-stg analyze`` subcommand and the ``check --facts`` flag."""

import json

import pytest

from repro.analysis import clear_memo
from repro.cli import main
from repro.models import vme_bus
from repro.stg.parser import write_stg


def setup_function(_):
    clear_memo()


@pytest.fixture
def vme_file(tmp_path):
    path = tmp_path / "vme.g"
    path.write_text(write_stg(vme_bus()))
    return str(path)


class TestAnalyze:
    def test_text_output(self, capsys):
        assert main(["analyze", "RING"]) == 0
        out = capsys.readouterr().out
        assert "facts" in out

    def test_verbose_lists_claims(self, capsys):
        assert main(["analyze", "RING", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "[" in out and "]" in out  # per-fact kind tags

    def test_verify_clean_model(self, capsys):
        assert main(["analyze", "RING", "--verify"]) == 0

    def test_json_output(self, vme_file, capsys):
        assert main(["analyze", vme_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload
        record = payload[0] if isinstance(payload, list) else payload
        assert "facts" in json.dumps(record)

    def test_multiple_targets(self, capsys):
        assert main(["analyze", "RING", "LAZYRING"]) == 0
        out = capsys.readouterr().out
        # one summary line per target (the STG names, not the CLI aliases)
        assert len([line for line in out.splitlines() if " facts (" in line]) == 2

    def test_budget_flags_accepted(self, capsys):
        assert main(["analyze", "RING", "--set-size", "4", "--set-count", "8"]) == 0


class TestCheckFacts:
    def test_facts_flag_preserves_verdict(self, vme_file, capsys):
        plain = main(["check", vme_file, "-p", "usc", "-p", "csc"])
        plain_out = capsys.readouterr().out
        with_facts = main(["check", vme_file, "-p", "usc", "-p", "csc", "--facts"])
        facts_out = capsys.readouterr().out
        assert with_facts == plain == 1
        for line in ("USC: CONFLICT", "CSC: CONFLICT"):
            assert line in plain_out and line in facts_out
