"""Clique-capacity tables: soundness relative to plain suffix counts."""

from repro.analysis.cliques import conflict_clique_capacities
from repro.core.context import SolverContext
from repro.models import TABLE1_BENCHMARKS
from repro.unfolding.unfolder import unfold


def context_for(name: str) -> SolverContext:
    stg = TABLE1_BENCHMARKS[name]()
    return SolverContext(unfold(stg))


class TestCapacities:
    def test_never_exceed_suffix_counts(self):
        for name in ("RING", "LAZYRING", "DUP-4PH-A"):
            context = context_for(name)
            plus_cap, minus_cap = conflict_clique_capacities(context)
            for i in range(context.num_vars + 1):
                for s in range(context.num_signals):
                    assert 0 <= plus_cap[i][s] <= context.suffix_plus[i][s]
                    assert 0 <= minus_cap[i][s] <= context.suffix_minus[i][s]

    def test_monotone_in_position(self):
        context = context_for("LAZYRING")
        plus_cap, minus_cap = conflict_clique_capacities(context)
        for table in (plus_cap, minus_cap):
            for i in range(context.num_vars):
                for s in range(context.num_signals):
                    assert table[i][s] >= table[i + 1][s]

    def test_last_row_is_zero(self):
        context = context_for("RING")
        plus_cap, minus_cap = conflict_clique_capacities(context)
        assert all(v == 0 for v in plus_cap[context.num_vars])
        assert all(v == 0 for v in minus_cap[context.num_vars])

    def test_conflict_free_prefix_equals_counts(self):
        # RING is a marked graph: every clique is a singleton, so the
        # capacities are exactly the plain suffix counts
        context = context_for("RING")
        plus_cap, minus_cap = conflict_clique_capacities(context)
        assert plus_cap == [list(row) for row in context.suffix_plus]
        assert minus_cap == [list(row) for row in context.suffix_minus]

    def test_deterministic(self):
        context = context_for("LAZYRING")
        assert conflict_clique_capacities(context) == conflict_clique_capacities(
            context
        )
