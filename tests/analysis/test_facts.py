"""Fact payloads: serialization, verification, and tamper rejection."""

import pytest

from repro.analysis import (
    FACT_NEVER_COENABLED,
    FACT_SIPHON,
    FACT_STRUCTURAL_CONFLICT,
    FACT_TRAP,
    FACT_VERSION,
    Fact,
    analyze,
    clear_memo,
    verify_fact,
)
from repro.models import TABLE1_BENCHMARKS


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_memo()
    yield
    clear_memo()


@pytest.fixture
def ring():
    return TABLE1_BENCHMARKS["RING"]()


class TestSerialization:
    def test_round_trip(self, ring):
        for fact in analyze(ring).facts:
            clone = Fact.from_dict(fact.to_dict())
            assert clone == fact

    def test_to_dict_is_json_safe(self, ring):
        import json

        for fact in analyze(ring).facts:
            json.dumps(fact.to_dict())


class TestVerification:
    def test_every_emitted_fact_verifies(self, ring):
        facts = analyze(ring)
        assert facts.verify_all(ring) == []

    def test_wrong_version_rejected(self, ring):
        fact = analyze(ring).facts[0]
        tampered = Fact(
            kind=fact.kind,
            subjects=fact.subjects,
            claim=fact.claim,
            justification={**fact.justification, "version": FACT_VERSION + 1},
        )
        assert not verify_fact(ring, tampered)

    def test_kind_mismatch_rejected(self, ring):
        facts = analyze(ring)
        conflict = facts.of_kind(FACT_STRUCTURAL_CONFLICT)
        exclusion = facts.of_kind(FACT_NEVER_COENABLED)
        if not conflict or not exclusion:
            pytest.skip("model lacks one of the fact kinds")
        crossed = Fact(
            kind=conflict[0].kind,
            subjects=conflict[0].subjects,
            claim=conflict[0].claim,
            justification=exclusion[0].justification,
        )
        assert not verify_fact(ring, crossed)

    def test_tampered_invariant_rejected(self, ring):
        exclusions = analyze(ring).of_kind(FACT_NEVER_COENABLED)
        assert exclusions, "RING should carry invariant exclusions"
        fact = exclusions[0]
        broken = dict(fact.justification)
        # zero out the invariant: budget argument collapses
        broken["invariant"] = [0] * len(broken["invariant"])
        assert not verify_fact(
            ring,
            Fact(
                kind=fact.kind,
                subjects=fact.subjects,
                claim=fact.claim,
                justification=broken,
            ),
        )

    def test_invariant_with_nonzero_flow_rejected(self, ring):
        exclusions = analyze(ring).of_kind(FACT_NEVER_COENABLED)
        fact = exclusions[0]
        broken = dict(fact.justification)
        vector = list(broken["invariant"])
        vector[0] += 1  # almost surely breaks y^T I = 0
        broken["invariant"] = vector
        tampered = Fact(
            kind=fact.kind,
            subjects=fact.subjects,
            claim=fact.claim,
            justification=broken,
        )
        # either the flow condition or the budget condition must now fail —
        # a slipped vector that still separates would be a genuine invariant
        from repro.petri.incidence import incidence_matrix

        matrix = incidence_matrix(ring.net)
        flow_broken = any(
            sum(vector[p] * int(matrix[p, t]) for p in range(ring.net.num_places))
            for t in range(ring.net.num_transitions)
        )
        if flow_broken:
            assert not verify_fact(ring, tampered)

    def test_fake_trap_rejected(self, ring):
        net = ring.net
        # every place at once is usually not a trap unless the net is one
        # big cycle; craft a definitely-broken singleton instead
        for p in range(net.num_places):
            if net.place_postset(p) and not net.place_preset(p):
                break
        else:
            pytest.skip("no source-free place to break a trap with")
        name = net.place_name(p)
        fake = Fact(
            kind=FACT_TRAP,
            subjects=(name,),
            claim="fake",
            justification={
                "version": FACT_VERSION,
                "kind": FACT_TRAP,
                "places": [name],
                "marked": True,
            },
        )
        assert not verify_fact(ring, fake)

    def test_malformed_payload_rejected(self, ring):
        fact = Fact(
            kind=FACT_SIPHON,
            subjects=("nope",),
            claim="fake",
            justification={
                "version": FACT_VERSION,
                "kind": FACT_SIPHON,
                "places": ["no-such-place"],
                "marked": False,
            },
        )
        assert not verify_fact(ring, fact)

    def test_unknown_kind_rejected(self, ring):
        fact = Fact(
            kind="not-a-kind",
            subjects=(),
            claim="",
            justification={"version": FACT_VERSION, "kind": "not-a-kind"},
        )
        assert not verify_fact(ring, fact)
