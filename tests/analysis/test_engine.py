"""The analyze() driver: memoization, ResultCache round-trip, DCF proof."""

import pytest

from repro import obs
from repro.analysis import (
    AnalysisOptions,
    FACT_SIPHON,
    FACT_TRAP,
    FactBase,
    analyze,
    clear_memo,
)
from repro.engine.cache import ResultCache
from repro.models import TABLE1_BENCHMARKS


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_memo()
    yield
    clear_memo()


@pytest.fixture
def ring():
    return TABLE1_BENCHMARKS["RING"]()


class TestMemo:
    def test_second_call_returns_same_object(self, ring):
        first = analyze(ring)
        assert analyze(ring) is first

    def test_clear_memo_forces_recompute(self, ring):
        first = analyze(ring)
        clear_memo()
        second = analyze(ring)
        assert second is not first
        assert second.to_dict() == first.to_dict()

    def test_cache_hit_counter(self, ring):
        from repro.obs.tracer import Tracer

        probe = Tracer(enabled=True)
        previous = obs.set_tracer(probe)
        try:
            analyze(ring)
            analyze(ring)
        finally:
            obs.set_tracer(previous)
        assert probe.counters.get("analysis.runs") == 1
        assert probe.counters.get("analysis.cache_hits") == 1


class TestResultCacheRoundTrip:
    def test_put_get_facts(self, ring, tmp_path):
        cache = ResultCache(tmp_path)
        facts = analyze(ring, cache=cache)
        clear_memo()
        reloaded = analyze(ring, cache=cache)
        assert reloaded.to_dict() == facts.to_dict()

    def test_get_facts_misses_on_unknown_hash(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_facts("not-a-real-hash") is None

    def test_facts_key_distinct_from_result_keys(self, ring, tmp_path):
        cache = ResultCache(tmp_path)
        key = ring.content_hash()
        assert cache.facts_key_for(key) != key


class TestFactBase:
    def test_serialization_round_trip(self, ring):
        facts = analyze(ring)
        clone = FactBase.from_dict(facts.to_dict())
        assert clone.to_dict() == facts.to_dict()
        # the derived relation views are rebuilt identically
        names = [ring.net.transition_name(t) for t in range(3)]
        for a in names:
            for b in names:
                assert clone.never_coenabled(a, b) == facts.never_coenabled(a, b)

    def test_ring_proves_dcf(self, ring):
        # RING is a marked graph: no structural conflicts, so DCF holds
        # vacuously — and the engine must notice
        assert analyze(ring).proves_dynamic_conflict_freeness()

    def test_counts_sum_to_total(self, ring):
        facts = analyze(ring)
        assert sum(facts.counts().values()) == len(facts.facts)


class TestOptions:
    def test_budgets_bound_enumeration(self, ring):
        tight = AnalysisOptions(
            trap_max_size=1, trap_max_count=1, siphon_max_size=1, siphon_max_count=1
        )
        facts = analyze(ring, options=tight)
        assert len(facts.of_kind(FACT_TRAP)) <= 1
        assert len(facts.of_kind(FACT_SIPHON)) <= 1
