"""Relation facts: conflicts, invariant exclusions, deadness, causality."""

from repro.analysis import FACT_NEVER_COENABLED, analyze, clear_memo, verify_fact
from repro.analysis.relations import (
    dead_transition_facts,
    may_follow_relation,
    never_coenabled_facts,
    same_signal_pairs,
    structural_conflict_facts,
    structural_conflict_pairs,
)
from repro.analysis.structure import minimal_siphons, unmarked_siphons
from repro.models import TABLE1_BENCHMARKS
from repro.petri.generators import choice, cycle
from repro.petri.net import PetriNet


def setup_function(_):
    clear_memo()


class TestStructuralConflicts:
    def test_choice_net_pairs(self):
        net = choice(3)
        pairs = structural_conflict_pairs(net)
        assert len(pairs) == 3  # 3 branches competing pairwise: C(3,2)
        facts = structural_conflict_facts(net)
        assert len(facts) == len(pairs)
        for fact in facts:
            assert fact.kind == "structural-conflict"

    def test_marked_graph_has_none(self):
        assert structural_conflict_pairs(cycle(4)) == []


class TestNeverCoenabled:
    def test_sequential_cycle_pairs_excluded(self):
        # one token walks a 3-cycle: no two transitions ever co-enabled
        net = cycle(3)
        pairs = [(0, 1), (0, 2), (1, 2)]
        facts = never_coenabled_facts(net, pairs)
        assert len(facts) == 3

    def test_weighted_mutex_excluded(self):
        # mutual exclusion guarded by a weighted invariant (p + 2q = 2):
        # enabling t needs 2 on p, enabling u needs 1 on q — co-enabling
        # would need p + 2q >= 4 > 2
        net = PetriNet("weighted-mutex")
        net.add_place("p", tokens=2)
        net.add_place("q")
        net.add_transition("t")  # reader: needs both tokens on p
        net.add_arc("p", "t", weight=2)
        net.add_arc("t", "p", weight=2)
        net.add_transition("u")  # reader: needs a token on q
        net.add_arc("q", "u")
        net.add_arc("u", "q")
        net.add_transition("swap")
        net.add_arc("p", "swap", weight=2)
        net.add_arc("swap", "q")
        net.add_transition("back")
        net.add_arc("q", "back")
        net.add_arc("back", "p", weight=2)
        t, u = net.transition_index("t"), net.transition_index("u")
        facts = never_coenabled_facts(net, [(t, u)])
        assert len(facts) == 1

    def test_lp_fallback_returns_checked_witness(self):
        from repro.analysis.relations import _lp_exclusion_invariant
        from repro.petri.incidence import incidence_matrix

        net = cycle(3)
        # joint demand of co-enabling transitions 0 and 1: one token on
        # each of their input places, but the single circulating token
        # makes that impossible
        joint = {0: 1, 1: 1}
        witness = _lp_exclusion_invariant(net, joint)
        assert witness is not None
        assert all(v >= 0 for v in witness)
        matrix = incidence_matrix(net)
        for t in range(net.num_transitions):
            assert (
                sum(witness[p] * int(matrix[p, t]) for p in range(net.num_places))
                == 0
            )
        needed = sum(witness[p] * w for p, w in joint.items())
        budget = sum(
            witness[p] * int(net.initial_marking[p]) for p in range(net.num_places)
        )
        assert needed > budget

    def test_lp_fallback_rejects_satisfiable_demand(self):
        from repro.analysis.relations import _lp_exclusion_invariant

        net = cycle(3)
        # a single token on one input place is always affordable
        assert _lp_exclusion_invariant(net, {0: 1}) is None

    def test_concurrent_pair_not_excluded(self):
        # two independent marked loops: both transitions are co-enabled at M0
        net = PetriNet("both")
        for name in ("a", "b"):
            net.add_place(name, tokens=1)
            net.add_transition(f"t_{name}")
            net.add_arc(name, f"t_{name}")
            net.add_arc(f"t_{name}", name)
        pair = (net.transition_index("t_a"), net.transition_index("t_b"))
        assert never_coenabled_facts(net, [pair]) == []

    def test_facts_verify_on_benchmarks(self):
        for name in ("RING", "LAZYRING", "DUP-4PH-A"):
            stg = TABLE1_BENCHMARKS[name]()
            for fact in analyze(stg).of_kind(FACT_NEVER_COENABLED):
                assert verify_fact(stg, fact), fact.claim


class TestDeadTransitions:
    def test_dead_from_unmarked_siphon(self):
        net = PetriNet("dead")
        net.add_place("never")
        net.add_transition("ghost")
        net.add_arc("never", "ghost")
        net.add_arc("ghost", "never")
        net.add_place("live", tokens=1)
        net.add_transition("spin")
        net.add_arc("live", "spin")
        net.add_arc("spin", "live")
        siphons = unmarked_siphons(net, minimal_siphons(net))
        facts = dead_transition_facts(net, siphons)
        assert [f.subjects[0] for f in facts] == ["ghost"]


class TestMayFollow:
    def test_cycle_reaches_everything(self):
        net = cycle(3)
        reach = may_follow_relation(net)
        for t in range(net.num_transitions):
            assert reach[t] == set(range(net.num_transitions))

    def test_chain_is_one_directional(self):
        net = PetriNet("chain")
        net.add_place("a", tokens=1)
        net.add_place("b")
        net.add_transition("first")
        net.add_transition("second")
        net.add_arc("a", "first")
        net.add_arc("first", "b")
        net.add_arc("b", "second")
        reach = may_follow_relation(net)
        first = net.transition_index("first")
        second = net.transition_index("second")
        assert second in reach[first]
        assert first not in reach[second]


class TestSameSignalPairs:
    def test_all_polarities_paired(self):
        stg = TABLE1_BENCHMARKS["RING"]()
        pairs = same_signal_pairs(stg)
        for t1, t2 in pairs:
            label1, label2 = stg.label(t1), stg.label(t2)
            assert label1.signal == label2.signal
            assert t1 < t2
