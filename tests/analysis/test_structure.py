"""Traps and siphons on hand-checkable nets."""

from repro.analysis import (
    is_siphon,
    is_trap,
    maximal_siphon,
    maximal_trap,
    minimal_siphons,
    minimal_traps,
)
from repro.analysis.structure import unmarked_siphons
from repro.petri.generators import cycle
from repro.petri.net import PetriNet


def drained_net():
    """p feeds t; nothing refills p: {p} is a siphon, not a trap."""
    net = PetriNet("drain")
    net.add_place("p")
    net.add_place("q", tokens=1)
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "q")
    net.add_transition("spin")
    net.add_arc("q", "spin")
    net.add_arc("spin", "q")
    return net


class TestFixpoints:
    def test_cycle_is_trap_and_siphon(self):
        net = cycle(4)
        everything = set(range(net.num_places))
        assert maximal_trap(net, everything) == everything
        assert maximal_siphon(net, everything) == everything
        assert is_trap(net, everything)
        assert is_siphon(net, everything)

    def test_drained_place_is_siphon_not_trap(self):
        net = drained_net()
        p = net.place_index("p")
        assert is_siphon(net, {p})
        assert not is_trap(net, {p})
        # the maximal trap inside {p} is empty
        assert maximal_trap(net, {p}) == set()

    def test_empty_set_is_neither(self):
        net = cycle(3)
        assert not is_trap(net, set())
        assert not is_siphon(net, set())


class TestMinimalEnumeration:
    def test_cycle_minimal_sets_are_the_cycle(self):
        net = cycle(5)
        everything = frozenset(range(net.num_places))
        assert minimal_traps(net) == [everything]
        assert minimal_siphons(net) == [everything]

    def test_results_are_genuine_and_minimal(self):
        net = drained_net()
        for siphon in minimal_siphons(net):
            assert is_siphon(net, set(siphon))
            for q in siphon:
                smaller = maximal_siphon(net, set(siphon) - {q})
                assert smaller != set(siphon)
        for trap in minimal_traps(net):
            assert is_trap(net, set(trap))

    def test_size_budget_respected(self):
        net = cycle(6)
        assert minimal_traps(net, max_size=3) == []

    def test_count_budget_respected(self):
        net = drained_net()
        assert len(minimal_siphons(net, max_count=1)) == 1

    def test_unmarked_siphons(self):
        net = drained_net()
        unmarked = unmarked_siphons(net, minimal_siphons(net))
        p = net.place_index("p")
        assert any(p in s for s in unmarked)
        q = net.place_index("q")
        assert all(q not in s for s in unmarked)

    def test_deterministic(self):
        net = drained_net()
        assert minimal_siphons(net) == minimal_siphons(net)
        assert minimal_traps(net) == minimal_traps(net)
