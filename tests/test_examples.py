"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    if script.name == "scalability_study.py":
        args = [sys.executable, str(script), "--max-seconds", "2"]
    else:
        args = [sys.executable, str(script)]
    result = subprocess.run(
        args, capture_output=True, text=True, timeout=600
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must produce output"


def test_quickstart_mentions_conflict():
    script = next(p for p in EXAMPLES if p.name == "quickstart.py")
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=600
    )
    assert "CSC holds: False" in result.stdout
    assert "path A" in result.stdout
