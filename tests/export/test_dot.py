"""Tests for the Graphviz DOT exporters."""

from repro.export import net_to_dot, prefix_to_dot, state_graph_to_dot, stg_to_dot
from repro.petri.generators import fork_join
from repro.stg.stategraph import build_state_graph
from repro.unfolding import unfold


class TestNetDot:
    def test_structure(self, simple_net):
        dot = net_to_dot(simple_net)
        assert dot.startswith("digraph")
        assert dot.count("shape=circle") == simple_net.num_places
        assert dot.count("shape=box") == simple_net.num_transitions
        assert dot.rstrip().endswith("}")

    def test_tokens_rendered(self, simple_net):
        assert "•" in net_to_dot(simple_net)

    def test_arcs_complete(self):
        net = fork_join(2)
        dot = net_to_dot(net)
        arcs = sum(1 for line in dot.splitlines() if "->" in line)
        assert arcs == sum(1 for _ in net.arcs())


class TestSTGDot:
    def test_edge_labels(self, vme):
        dot = stg_to_dot(vme)
        assert '"dsr+"' in dot
        assert '"ldtack-"' in dot

    def test_simple_places_hidden(self, vme):
        dot = stg_to_dot(vme, hide_simple_places=True)
        full = stg_to_dot(vme, hide_simple_places=False)
        assert dot.count("shape=circle") < full.count("shape=circle")
        # marked places are always drawn
        assert dot.count("shape=circle") == 2


class TestPrefixDot:
    def test_cutoffs_double_bordered(self, vme):
        prefix = unfold(vme)
        dot = prefix_to_dot(prefix)
        assert dot.count("peripheries=2") == prefix.num_cutoffs
        assert dot.count("shape=circle") == prefix.num_conditions
        assert dot.count("shape=box") == prefix.num_events


class TestStateGraphDot:
    def test_codes_and_conflicts(self, vme):
        graph = build_state_graph(vme)
        dot = state_graph_to_dot(graph)
        conflict = graph.csc_conflicts(first_only=True)[0]
        code = "".join(map(str, conflict.code))
        assert f'"{code}"' in dot
        assert "lightcoral" in dot  # conflicting states highlighted

    def test_clean_graph_has_no_highlight(self, vme_csc):
        graph = build_state_graph(vme_csc)
        dot = state_graph_to_dot(graph)
        assert "lightcoral" not in dot

    def test_edges_labelled(self, vme):
        graph = build_state_graph(vme)
        dot = state_graph_to_dot(graph)
        assert 'label="dsr+"' in dot
