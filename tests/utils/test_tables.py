"""Tests for the plain-text table renderer."""

from repro.utils.tables import format_table


def test_alignment_and_separator():
    out = format_table(["name", "n"], [["a", 1], ["bb", 22]])
    lines = out.splitlines()
    assert lines[0] == "name | n"
    assert lines[1] == "-----+---"
    assert lines[2] == "a    |  1"
    assert lines[3] == "bb   | 22"


def test_floats_two_decimals():
    out = format_table(["t"], [[1.234567]])
    assert "1.23" in out
    assert "1.2345" not in out


def test_title_prepended():
    out = format_table(["x"], [[1]], title="Table 1")
    assert out.splitlines()[0] == "Table 1"


def test_wide_headers_win_width():
    out = format_table(["very-long-header"], [["x"]])
    lines = out.splitlines()
    assert len(lines[1]) == len(lines[0])


def test_numeric_right_alignment_string_left():
    out = format_table(["s", "n"], [["abc", 5], ["d", 123]])
    rows = out.splitlines()[2:]
    assert rows[0].startswith("abc")
    assert rows[0].endswith("  5")
    assert rows[1].endswith("123")


def test_empty_rows():
    out = format_table(["a", "b"], [])
    assert len(out.splitlines()) == 2
