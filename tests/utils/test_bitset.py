"""Unit and property tests for the BitSet utility."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitset import BitSet

small_sets = st.sets(st.integers(min_value=0, max_value=200), max_size=40)


class TestBasics:
    def test_empty(self):
        b = BitSet.empty()
        assert len(b) == 0
        assert not b
        assert list(b) == []

    def test_singleton(self):
        b = BitSet.singleton(5)
        assert 5 in b
        assert 4 not in b
        assert len(b) == 1

    def test_from_iterable_dedups(self):
        b = BitSet.from_iterable([1, 1, 2, 2, 2])
        assert len(b) == 2
        assert sorted(b) == [1, 2]

    def test_negative_member_rejected(self):
        with pytest.raises(ValueError):
            BitSet.from_iterable([-1])
        with pytest.raises(ValueError):
            BitSet.singleton(-3)
        with pytest.raises(ValueError):
            BitSet(-1)

    def test_add_remove_are_persistent(self):
        a = BitSet.from_iterable([1, 2])
        b = a.add(3)
        c = b.remove(1)
        assert sorted(a) == [1, 2]
        assert sorted(b) == [1, 2, 3]
        assert sorted(c) == [2, 3]

    def test_remove_absent_is_noop(self):
        a = BitSet.from_iterable([1])
        assert a.remove(7) == a

    def test_repr_roundtrip_members(self):
        a = BitSet.from_iterable([3, 1])
        assert repr(a) == "BitSet({1, 3})"

    def test_contains_negative(self):
        assert -1 not in BitSet.from_iterable([0, 1])


class TestAlgebraProperties:
    @given(small_sets, small_sets)
    def test_union_matches_set_union(self, xs, ys):
        assert set(BitSet.from_iterable(xs) | BitSet.from_iterable(ys)) == xs | ys

    @given(small_sets, small_sets)
    def test_intersection_matches(self, xs, ys):
        assert set(BitSet.from_iterable(xs) & BitSet.from_iterable(ys)) == xs & ys

    @given(small_sets, small_sets)
    def test_difference_matches(self, xs, ys):
        assert set(BitSet.from_iterable(xs) - BitSet.from_iterable(ys)) == xs - ys

    @given(small_sets, small_sets)
    def test_symmetric_difference_matches(self, xs, ys):
        assert set(BitSet.from_iterable(xs) ^ BitSet.from_iterable(ys)) == xs ^ ys

    @given(small_sets, small_sets)
    def test_subset_superset(self, xs, ys):
        a, b = BitSet.from_iterable(xs), BitSet.from_iterable(ys)
        assert a.issubset(b) == xs.issubset(ys)
        assert a.issuperset(b) == xs.issuperset(ys)
        assert a.isdisjoint(b) == xs.isdisjoint(ys)
        assert a.intersects(b) == bool(xs & ys)

    @given(small_sets)
    def test_len_and_iteration(self, xs):
        b = BitSet.from_iterable(xs)
        assert len(b) == len(xs)
        assert sorted(b) == sorted(xs)

    @given(small_sets, small_sets)
    def test_equality_and_hash(self, xs, ys):
        a, b = BitSet.from_iterable(xs), BitSet.from_iterable(ys)
        assert (a == b) == (xs == ys)
        if xs == ys:
            assert hash(a) == hash(b)
