"""The shared atomic JSON entry store (extracted from the result cache)."""

import json
import multiprocessing
import os

import pytest

from repro.utils.filestore import TMP_PREFIX, FileStore


@pytest.fixture
def store(tmp_path):
    return FileStore(tmp_path / "store")


KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestBasics:
    def test_put_get_roundtrip(self, store):
        assert store.put(KEY, {"x": 1})
        assert store.get(KEY) == {"x": 1}

    def test_get_missing_is_none(self, store):
        assert store.get(KEY) is None

    def test_fanout_layout(self, store):
        store.put(KEY, {})
        assert store.path_for(KEY).parent.name == KEY[:2]
        assert store.path_for(KEY).name == f"{KEY}.json"

    def test_overwrite_replaces(self, store):
        store.put(KEY, {"v": 1})
        store.put(KEY, {"v": 2})
        assert store.get(KEY) == {"v": 2}
        assert len(store) == 1

    def test_len_and_entries(self, store):
        assert len(store) == 0
        store.put(KEY, {})
        store.put(OTHER, {})
        assert len(store) == 2
        assert {p.name for p in store.entries()} == {
            f"{KEY}.json",
            f"{OTHER}.json",
        }

    def test_corrupt_entry_reads_as_none(self, store):
        store.put(KEY, {})
        store.path_for(KEY).write_text("{not json")
        assert store.get(KEY) is None

    def test_non_object_entry_reads_as_none(self, store):
        store.put(KEY, {})
        store.path_for(KEY).write_text("[1, 2]")
        assert store.get(KEY) is None

    def test_unserialisable_payload_fails_cleanly(self, store):
        assert not store.put(KEY, {"bad": object()})
        assert store.get(KEY) is None
        assert list(store.tmp_files()) == []


class TestDotfileHygiene:
    def test_entries_skip_tmp_dotfiles(self, store):
        store.put(KEY, {})
        orphan = store.path_for(KEY).parent / f"{TMP_PREFIX}orphan.json"
        orphan.write_text("{}")
        assert len(store) == 1
        assert all(not p.name.startswith(TMP_PREFIX) for p in store.entries())
        assert [p.name for p in store.tmp_files()] == [orphan.name]

    def test_sweep_tmp_removes_orphans(self, store):
        store.put(KEY, {})
        orphan = store.path_for(KEY).parent / f"{TMP_PREFIX}orphan.json"
        orphan.write_text("{}")
        assert store.sweep_tmp() == 1
        assert not orphan.exists()
        assert store.get(KEY) == {}

    def test_sweep_tmp_respects_mtime_cutoff(self, store):
        store.put(KEY, {})
        orphan = store.path_for(KEY).parent / f"{TMP_PREFIX}orphan.json"
        orphan.write_text("{}")
        os.utime(orphan, (2_000_000_000, 2_000_000_000))
        assert store.sweep_tmp(older_than_mtime=1_000_000_000) == 0
        assert orphan.exists()

    def test_clear_removes_entries_only(self, store):
        store.put(KEY, {})
        orphan = store.path_for(KEY).parent / f"{TMP_PREFIX}orphan.json"
        orphan.write_text("{}")
        assert store.clear() == 1
        assert len(store) == 0
        assert orphan.exists()  # clear targets entries; sweep_tmp does temps


def _hammer(root, worker):
    store = FileStore(root)
    for i in range(50):
        store.put(KEY, {"worker": worker, "i": i})


class TestConcurrency:
    def test_concurrent_writers_never_tear(self, tmp_path):
        root = str(tmp_path / "store")
        procs = [
            multiprocessing.Process(target=_hammer, args=(root, w))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        store = FileStore(root)
        # read while the writers race: every observation must be a complete
        # entry (or no entry yet) — never a torn/partial file
        for _ in range(200):
            entry = store.get(KEY)
            if entry is not None:
                assert set(entry) == {"worker", "i"}
        for p in procs:
            p.join()
            assert p.exitcode == 0
        final = store.get(KEY)
        assert final is not None and final["i"] == 49
        assert list(store.tmp_files()) == []

    def test_no_litter_outside_root(self, tmp_path):
        root = tmp_path / "store"
        FileStore(root).put(KEY, {"x": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["store"]
        payload = json.loads(FileStore(root).path_for(KEY).read_text())
        assert payload == {"x": 1}
