"""Tests for configurations, cuts, markings and linearisations."""

import pytest

from repro.models import vme_bus
from repro.petri.generators import fork_join
from repro.unfolding import unfold
from repro.unfolding.configurations import (
    cut_of,
    is_configuration,
    linearise,
    local_configuration,
    marking_of,
    parikh_of,
    signal_change_of,
)
from repro.utils.bitset import BitSet


@pytest.fixture
def vme_prefix(vme):
    return unfold(vme)


class TestIsConfiguration:
    def test_empty_is_configuration(self, vme_prefix):
        assert is_configuration(vme_prefix, BitSet())

    def test_local_configurations(self, vme_prefix):
        for event in vme_prefix.events:
            assert is_configuration(
                vme_prefix, local_configuration(vme_prefix, event.index)
            )

    def test_not_causally_closed(self, vme_prefix):
        # event 1 (lds+) without its cause (dsr+)
        assert not is_configuration(vme_prefix, BitSet.from_iterable([1]))

    def test_conflicting_set(self):
        from repro.petri.generators import choice

        prefix = unfold(choice(2, 1))
        # both branch events consume the same start condition
        both = BitSet.from_iterable([0, 1])
        assert not is_configuration(prefix, both)


class TestCutAndMarking:
    def test_empty_cut_is_min(self, vme_prefix):
        assert cut_of(vme_prefix, BitSet()) == sorted(vme_prefix.min_conditions)

    def test_empty_marking_is_initial(self, vme_prefix, vme):
        assert marking_of(vme_prefix, BitSet()) == vme.net.initial_marking

    def test_marking_matches_replay(self, vme_prefix, vme):
        for event in vme_prefix.events:
            config = local_configuration(vme_prefix, event.index)
            sequence = linearise(vme_prefix, config)
            replayed = vme.net.fire_sequence(vme.net.initial_marking, sequence)
            assert replayed == marking_of(vme_prefix, config)

    def test_cut_conditions_pairwise_concurrent(self, vme_prefix):
        from repro.unfolding import PrefixRelations

        rel = PrefixRelations(vme_prefix)
        for event in vme_prefix.events:
            cut = cut_of(vme_prefix, event.history)
            # conditions in a cut share no producing/consuming order: check
            # via their producing events being concurrent or equal
            producers = [
                vme_prefix.conditions[b].pre_event
                for b in cut
                if vme_prefix.conditions[b].pre_event is not None
            ]
            for i, e in enumerate(producers):
                for f in producers[i + 1:]:
                    if e != f:
                        assert not rel.in_conflict(e, f)


class TestLinearise:
    def test_respects_causality(self, vme_prefix):
        for event in vme_prefix.events:
            config = local_configuration(vme_prefix, event.index)
            sequence = linearise(vme_prefix, config)
            assert len(sequence) == len(config)

    def test_rejects_non_configuration(self, vme_prefix):
        with pytest.raises(ValueError):
            linearise(vme_prefix, BitSet.from_iterable([1]))  # missing cause


class TestVectors:
    def test_parikh_counts(self, vme_prefix, vme):
        full = BitSet.from_iterable(
            e.index for e in vme_prefix.events if not e.is_cutoff
        )
        parikh = parikh_of(vme_prefix, full)
        assert sum(parikh) == len(full)
        # dsr+ occurs twice in the prefix (e0 and the restart)
        dsr_plus = vme.net.transition_index("dsr+")
        assert parikh[dsr_plus] == 2

    def test_signal_change_of_full_cycle(self, vme_prefix, vme):
        """A configuration executing one full cycle returns all signals to
        their initial values."""
        # the history of the cut-off event is a full cycle plus the restart
        (cutoff,) = vme_prefix.cutoff_events
        config = vme_prefix.events[cutoff].history.remove(cutoff)
        change = signal_change_of(vme_prefix, config)
        # dsr rose again (second cycle) -> +1; everything else balanced
        dsr = vme.signal_index("dsr")
        lds = vme.signal_index("lds")
        assert change[dsr] == 1
        assert change[lds] == 0

    def test_signal_change_requires_stg(self):
        prefix = unfold(fork_join(2))
        with pytest.raises(ValueError):
            signal_change_of(prefix, BitSet())
