"""Tests for the complete-prefix unfolder, including Figure 2 of the paper."""

import pytest

from repro.exceptions import UnfoldingError
from repro.models import vme_bus
from repro.petri.generators import chain, choice, cycle, fork_join
from repro.petri.net import PetriNet
from repro.unfolding import UnfoldingOptions, unfold


class TestFigure2:
    """The paper's Figure 2: the VME prefix has 12 events, the last being a
    cut-off labelled lds+."""

    def test_event_count(self, vme):
        prefix = unfold(vme)
        assert prefix.num_events == 12
        assert prefix.num_cutoffs == 1

    def test_cutoff_is_second_lds_plus(self, vme):
        prefix = unfold(vme)
        (cutoff,) = prefix.cutoff_events
        transition = prefix.events[cutoff].transition
        assert vme.net.transition_name(transition) == "lds+"

    def test_event_labels_match_figure(self, vme):
        prefix = unfold(vme)
        names = [
            vme.net.transition_name(e.transition) for e in prefix.events
        ]
        # one instance of every transition plus the second lds+
        assert sorted(names) == sorted(
            [
                "dsr+", "lds+", "ldtack+", "d+", "dtack+", "dsr-",
                "d-", "dtack-", "lds-", "ldtack-", "dsr+", "lds+",
            ]
        )


class TestStructuralInvariants:
    @pytest.mark.parametrize(
        "net_builder",
        [
            lambda: chain(4),
            lambda: cycle(5),
            lambda: fork_join(3),
            lambda: choice(3, 2),
        ],
    )
    def test_occurrence_net_properties(self, net_builder):
        prefix = unfold(net_builder())
        # every condition has at most one producer (by construction) and the
        # net is acyclic: each event's preset conditions are produced by
        # events with strictly smaller history
        for event in prefix.events:
            for b in event.preset:
                producer = prefix.conditions[b].pre_event
                if producer is not None:
                    assert prefix.events[producer].local_size < event.local_size
        # homomorphism: presets/postsets map bijectively
        net = prefix.net
        for event in prefix.events:
            pre_places = sorted(prefix.conditions[b].place for b in event.preset)
            assert pre_places == sorted(net.preset(event.transition))
            post_places = sorted(prefix.conditions[b].place for b in event.postset)
            assert post_places == sorted(net.postset(event.transition))

    def test_histories_are_configurations(self, vme):
        from repro.unfolding.configurations import is_configuration

        prefix = unfold(vme)
        for event in prefix.events:
            assert is_configuration(prefix, event.history)

    def test_mark_of_local_configuration(self, vme):
        from repro.unfolding.configurations import marking_of

        prefix = unfold(vme)
        for event in prefix.events:
            assert marking_of(prefix, event.history) == event.mark


class TestCompleteness:
    @pytest.mark.parametrize(
        "net_builder",
        [
            lambda: chain(3),
            lambda: cycle(6),
            lambda: fork_join(4),
            lambda: choice(4, 2),
            lambda: vme_bus().net,
        ],
    )
    def test_prefix_represents_all_reachable_markings(self, net_builder):
        """Every reachable marking must be Mark(C) for some configuration of
        the prefix (and vice versa) — the definition of completeness."""
        from repro.petri.reachability import explore
        from repro.unfolding.configurations import is_configuration, marking_of
        from repro.utils.bitset import BitSet

        net = net_builder()
        prefix = unfold(net)
        assert prefix.num_events <= 40, "keep the exhaustive check tractable"
        represented = set()
        for bits in range(1 << prefix.num_events):
            candidate = BitSet(bits)
            if is_configuration(prefix, candidate):
                represented.add(marking_of(prefix, candidate))
        reachable = set(explore(net).markings)
        assert represented == reachable

    def test_cutoff_marking_seen_before(self, vme):
        prefix = unfold(vme)
        live_marks = {
            e.mark for e in prefix.events if not e.is_cutoff
        } | {vme.net.initial_marking}
        for e in prefix.events:
            if e.is_cutoff:
                assert e.mark in live_marks


class TestOrders:
    def test_mcmillan_at_least_as_large(self, vme):
        erv = unfold(vme, UnfoldingOptions(order="erv"))
        mcm = unfold(vme, UnfoldingOptions(order="mcmillan"))
        assert mcm.num_events >= erv.num_events

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            UnfoldingOptions(order="bogus")


class TestGuards:
    def test_weighted_net_rejected(self):
        net = PetriNet()
        net.add_place("p", tokens=2)
        net.add_transition("t")
        net.add_arc("p", "t", weight=2)
        with pytest.raises(UnfoldingError):
            unfold(net)

    def test_sourceless_transition_rejected(self):
        net = PetriNet()
        net.add_place("p")
        net.add_transition("t")
        net.add_arc("t", "p")
        with pytest.raises(UnfoldingError):
            unfold(net)

    def test_event_budget(self, vme):
        with pytest.raises(UnfoldingError):
            unfold(vme, UnfoldingOptions(max_events=3))

    def test_two_bounded_net_unfolds(self):
        # the unfolder supports bounded (not just safe) ordinary nets
        net = cycle(4, tokens=2)
        prefix = unfold(net)
        assert prefix.num_events > 0
        assert prefix.num_cutoffs > 0


class TestPrefixAsNet:
    def test_as_net_is_acyclic_and_safe(self, vme):
        from repro.petri.analysis import is_safe

        prefix = unfold(vme)
        unf = prefix.as_net()
        assert unf.num_places == prefix.num_conditions
        assert unf.num_transitions == prefix.num_events
        assert is_safe(unf, max_states=100_000)

    def test_initial_marking_canonical(self, vme):
        prefix = unfold(vme)
        m_in = prefix.initial_marking()
        assert m_in.total() == len(prefix.min_conditions)
