"""Tests for the causality/conflict/concurrency relations of a prefix."""

import pytest

from repro.models import vme_bus
from repro.petri.generators import choice, fork_join
from repro.unfolding import PrefixRelations, unfold


@pytest.fixture
def vme_rel(vme):
    prefix = unfold(vme)
    return prefix, PrefixRelations(prefix)


class TestCausality:
    def test_pred_matches_history(self, vme_rel):
        prefix, rel = vme_rel
        for event in prefix.events:
            expected = event.history.bits & ~(1 << event.index)
            assert rel.pred[event.index] == expected

    def test_succ_is_inverse_of_pred(self, vme_rel):
        prefix, rel = vme_rel
        for e in range(prefix.num_events):
            for f in range(prefix.num_events):
                assert ((rel.succ[e] >> f) & 1) == ((rel.pred[f] >> e) & 1)

    def test_local_configuration_mask(self, vme_rel):
        prefix, rel = vme_rel
        for event in prefix.events:
            assert rel.local_configuration_mask(event.index) == event.history.bits


class TestConflict:
    def test_no_conflicts_in_marked_graph_unfolding(self):
        prefix = unfold(fork_join(3))
        rel = PrefixRelations(prefix)
        assert all(c == 0 for c in rel.conf)

    def test_direct_conflicts_in_choice(self):
        prefix = unfold(choice(3, 1))
        rel = PrefixRelations(prefix)
        # the three branch transitions consume the same start condition
        first_events = [
            e.index for e in prefix.events if not e.preset[0]
        ]  # preset condition 0 == the marked start place
        # at least one pair of events must be in conflict
        pairs = [
            (e, f)
            for e in range(prefix.num_events)
            for f in range(prefix.num_events)
            if e < f and rel.in_conflict(e, f)
        ]
        assert pairs

    def test_conflict_is_symmetric_and_irreflexive(self, vme_rel):
        prefix, rel = vme_rel
        for e in range(prefix.num_events):
            assert not rel.in_conflict(e, e)
            for f in range(prefix.num_events):
                assert rel.in_conflict(e, f) == rel.in_conflict(f, e)

    def test_conflict_inherited_by_successors(self):
        prefix = unfold(choice(2, 2))
        rel = PrefixRelations(prefix)
        for e in range(prefix.num_events):
            for f in range(prefix.num_events):
                if rel.in_conflict(e, f):
                    rest = rel.succ[e]
                    while rest:
                        low = rest & -rest
                        succ = low.bit_length() - 1
                        assert rel.in_conflict(succ, f)
                        rest ^= low


class TestTrichotomy:
    def test_every_pair_classified_exactly_once(self, vme_rel):
        """Two distinct events are causally ordered, in conflict, or
        concurrent — exactly one of the three."""
        prefix, rel = vme_rel
        for e in range(prefix.num_events):
            for f in range(prefix.num_events):
                if e == f:
                    continue
                kinds = [
                    rel.causally_ordered(e, f),
                    rel.in_conflict(e, f),
                    rel.concurrent(e, f),
                ]
                assert sum(kinds) == 1

    def test_concurrency_matches_joint_configuration(self, vme_rel):
        """e co f iff some configuration contains both (oracle check)."""
        from repro.unfolding.configurations import is_configuration
        from repro.utils.bitset import BitSet

        prefix, rel = vme_rel
        for e in range(prefix.num_events):
            for f in range(e + 1, prefix.num_events):
                joint = BitSet(
                    prefix.events[e].history.bits | prefix.events[f].history.bits
                )
                joint_ok = is_configuration(prefix, joint)
                # joint local configurations exist iff not in conflict
                assert joint_ok == (not rel.in_conflict(e, f))


class TestFreeMask:
    def test_free_mask_excludes_cutoffs_and_successors(self, vme_rel):
        prefix, rel = vme_rel
        free = rel.free_events_mask()
        for e in prefix.cutoff_events:
            assert not (free >> e) & 1

    def test_topological_order_respects_causality(self, vme_rel):
        prefix, rel = vme_rel
        order = rel.topological_order()
        position = {e: i for i, e in enumerate(order)}
        for e in range(prefix.num_events):
            rest = rel.pred[e]
            while rest:
                low = rest & -rest
                assert position[low.bit_length() - 1] < position[e]
                rest ^= low
