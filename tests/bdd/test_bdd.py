"""Unit and property tests for the ROBDD engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD, FALSE, TRUE


@pytest.fixture
def manager():
    return BDD()


class TestBasics:
    def test_terminals(self, manager):
        assert manager.const(True) == TRUE
        assert manager.const(False) == FALSE

    def test_var_and_nvar(self, manager):
        x = manager.var(0)
        assert manager.evaluate(x, {0: 1})
        assert not manager.evaluate(x, {0: 0})
        nx = manager.nvar(0)
        assert manager.evaluate(nx, {0: 0})

    def test_hash_consing(self, manager):
        assert manager.var(3) == manager.var(3)
        a = manager.and_(manager.var(0), manager.var(1))
        b = manager.and_(manager.var(0), manager.var(1))
        assert a == b

    def test_reduction_no_redundant_nodes(self, manager):
        x = manager.var(0)
        f = manager.or_(x, manager.not_(x))  # tautology
        assert f == TRUE

    def test_size(self, manager):
        x, y = manager.var(0), manager.var(1)
        f = manager.and_(x, y)
        assert manager.size(f) == 2
        assert manager.size(TRUE) == 0


class TestConnectives:
    def test_truth_tables(self, manager):
        x, y = manager.var(0), manager.var(1)
        cases = [(a, b) for a in (0, 1) for b in (0, 1)]
        for f, expected in [
            (manager.and_(x, y), lambda a, b: a and b),
            (manager.or_(x, y), lambda a, b: a or b),
            (manager.xor_(x, y), lambda a, b: a != b),
            (manager.implies(x, y), lambda a, b: (not a) or b),
            (manager.iff(x, y), lambda a, b: a == b),
            (manager.diff(x, y), lambda a, b: a and not b),
        ]:
            for a, b in cases:
                assert manager.evaluate(f, {0: a, 1: b}) == bool(expected(a, b))

    def test_variadic(self, manager):
        vs = [manager.var(i) for i in range(5)]
        f = manager.and_(*vs)
        assert manager.evaluate(f, {i: 1 for i in range(5)})
        assert not manager.evaluate(f, {0: 1, 1: 1, 2: 0, 3: 1, 4: 1})
        assert manager.and_() == TRUE
        assert manager.or_() == FALSE

    def test_double_negation(self, manager):
        x = manager.var(2)
        assert manager.not_(manager.not_(x)) == x

    def test_ite_shortcuts(self, manager):
        x, y = manager.var(0), manager.var(1)
        assert manager.ite(TRUE, x, y) == x
        assert manager.ite(FALSE, x, y) == y
        assert manager.ite(x, TRUE, FALSE) == x
        assert manager.ite(x, y, y) == y


class TestQuantification:
    def test_exists(self, manager):
        x, y = manager.var(0), manager.var(1)
        f = manager.and_(x, y)
        assert manager.exists([0], f) == y
        assert manager.exists([0, 1], f) == TRUE
        assert manager.exists([], f) == f

    def test_forall(self, manager):
        x, y = manager.var(0), manager.var(1)
        f = manager.or_(x, y)
        assert manager.forall([0], f) == y
        assert manager.forall([0, 1], manager.and_(x, y)) == FALSE


class TestSubstitution:
    def test_rename_shift(self, manager):
        x, y = manager.var(0), manager.var(1)
        f = manager.and_(x, manager.not_(y))
        g = manager.rename(f, {0: 2, 1: 3})
        assert manager.evaluate(g, {2: 1, 3: 0})
        assert not manager.evaluate(g, {2: 1, 3: 1})

    def test_rename_non_monotone(self, manager):
        # swap the order of two variables
        x, y = manager.var(0), manager.var(1)
        f = manager.and_(x, manager.not_(y))
        g = manager.rename(f, {0: 1, 1: 0})
        assert manager.evaluate(g, {1: 1, 0: 0})

    def test_restrict(self, manager):
        x, y = manager.var(0), manager.var(1)
        f = manager.xor_(x, y)
        assert manager.restrict(f, {0: True}) == manager.not_(y)
        assert manager.restrict(f, {0: False}) == y


class TestModels:
    def test_any_sat(self, manager):
        x, y = manager.var(0), manager.var(1)
        f = manager.and_(x, manager.not_(y))
        model = manager.any_sat(f)
        assert model == {0: True, 1: False}
        assert manager.any_sat(FALSE) is None
        assert manager.any_sat(TRUE) == {}

    def test_sat_count(self, manager):
        x, y = manager.var(0), manager.var(1)
        assert manager.sat_count(manager.and_(x, y), 2) == 1
        assert manager.sat_count(manager.or_(x, y), 2) == 3
        assert manager.sat_count(TRUE, 3) == 8
        assert manager.sat_count(FALSE, 3) == 0
        assert manager.sat_count(x, 2) == 2

    def test_iter_sats(self, manager):
        x, y = manager.var(0), manager.var(1)
        f = manager.or_(x, y)
        models = list(manager.iter_sats(f, [0, 1]))
        assert len(models) == 3
        for model in models:
            assert manager.evaluate(f, {k: int(v) for k, v in model.items()})


# -- property tests against a brute-force oracle ------------------------------

NUM_VARS = 4

formula = st.deferred(
    lambda: st.one_of(
        st.builds(lambda v: ("var", v), st.integers(0, NUM_VARS - 1)),
        st.tuples(st.just("not"), formula),
        st.tuples(st.just("and"), formula, formula),
        st.tuples(st.just("or"), formula, formula),
        st.tuples(st.just("xor"), formula, formula),
    )
)


def build(manager, tree):
    op = tree[0]
    if op == "var":
        return manager.var(tree[1])
    if op == "not":
        return manager.not_(build(manager, tree[1]))
    f = build(manager, tree[1])
    g = build(manager, tree[2])
    return getattr(manager, f"{op}_")(f, g)


def brute(tree, assignment):
    op = tree[0]
    if op == "var":
        return bool(assignment[tree[1]])
    if op == "not":
        return not brute(tree[1], assignment)
    a = brute(tree[1], assignment)
    b = brute(tree[2], assignment)
    return {"and": a and b, "or": a or b, "xor": a != b}[op]


class TestPropertyBased:
    @settings(max_examples=150, deadline=None)
    @given(formula)
    def test_bdd_matches_brute_force(self, tree):
        manager = BDD()
        node = build(manager, tree)
        for bits in range(1 << NUM_VARS):
            assignment = {i: (bits >> i) & 1 for i in range(NUM_VARS)}
            assert manager.evaluate(node, assignment) == brute(tree, assignment)

    @settings(max_examples=80, deadline=None)
    @given(formula)
    def test_sat_count_matches_enumeration(self, tree):
        manager = BDD()
        node = build(manager, tree)
        expected = sum(
            brute(tree, {i: (bits >> i) & 1 for i in range(NUM_VARS)})
            for bits in range(1 << NUM_VARS)
        )
        assert manager.sat_count(node, NUM_VARS) == expected

    @settings(max_examples=80, deadline=None)
    @given(formula)
    def test_canonicity(self, tree):
        """Semantically equal formulas produce identical node ids."""
        manager = BDD()
        node = build(manager, tree)
        double_neg = manager.not_(manager.not_(node))
        assert double_neg == node
