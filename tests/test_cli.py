"""Tests for the repro-stg command-line interface."""

import pytest

from repro.cli import main
from repro.models import vme_bus, vme_bus_csc_resolved
from repro.stg.parser import write_stg


@pytest.fixture
def vme_file(tmp_path):
    path = tmp_path / "vme.g"
    path.write_text(write_stg(vme_bus()))
    return str(path)


@pytest.fixture
def vme_csc_file(tmp_path):
    path = tmp_path / "vme_csc.g"
    path.write_text(write_stg(vme_bus_csc_resolved()))
    return str(path)


class TestCheck:
    def test_csc_conflict_exit_code(self, vme_file, capsys):
        assert main(["check", vme_file]) == 1
        assert "CSC: CONFLICT" in capsys.readouterr().out

    def test_csc_clean_exit_code(self, vme_csc_file, capsys):
        assert main(["check", vme_csc_file]) == 0
        assert "CSC: OK" in capsys.readouterr().out

    def test_multiple_properties(self, vme_file, capsys):
        code = main(
            [
                "check", vme_file,
                "-p", "consistency", "-p", "deadlock", "-p", "usc", "-p", "csc",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "consistency: OK" in out
        assert "deadlock: none" in out
        assert "USC: CONFLICT" in out

    def test_normalcy(self, vme_csc_file, capsys):
        assert main(["check", vme_csc_file, "-p", "normalcy"]) == 1
        assert "normalcy: VIOLATED" in capsys.readouterr().out

    @pytest.mark.parametrize("method", ["ilp", "sg", "bdd"])
    def test_methods_agree(self, vme_file, method, capsys):
        assert main(["check", vme_file, "-m", method]) == 1

    def test_verbose_prints_witness(self, vme_file, capsys):
        main(["check", vme_file, "-v"])
        out = capsys.readouterr().out
        assert "witness" in out
        assert "prefix" in out

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent.g"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.g"
        bad.write_text(".model x\n.bogus\n.end\n")
        assert main(["check", str(bad)]) == 2

    def test_solver_limit_reports_instead_of_traceback(self, vme_file, capsys):
        code = main(["check", vme_file, "--node-budget", "1"])
        captured = capsys.readouterr()
        assert code == 2
        assert "csc: UNDECIDED (budget exhausted)" in captured.out
        assert "gave up" in captured.err
        assert "node budget" in captured.err

    def test_limit_on_one_property_still_checks_the_others(
        self, vme_file, capsys
    ):
        code = main(
            ["check", vme_file, "-p", "csc", "-p", "consistency",
             "--node-budget", "1"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "consistency: OK" in captured.out
        assert "csc: UNDECIDED" in captured.out

    def test_generous_budget_still_decides(self, vme_file, capsys):
        assert main(["check", vme_file, "--node-budget", "100000"]) == 1
        assert "CSC: CONFLICT" in capsys.readouterr().out

    def test_portfolio_flag(self, vme_file, capsys):
        assert main(["check", vme_file, "--portfolio", "ilp,sat"]) == 1
        assert "CSC: CONFLICT" in capsys.readouterr().out

    def test_portfolio_unknown_engine(self, vme_file, capsys):
        assert main(["check", vme_file, "--portfolio", "cplex"]) == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_global_verbose_flag(self, vme_file, capsys):
        # -v before the subcommand configures logging; verdict unchanged
        assert main(["-v", "check", vme_file]) == 1
        assert "CSC: CONFLICT" in capsys.readouterr().out


class TestUnfold:
    def test_prints_sizes(self, vme_file, capsys):
        assert main(["unfold", vme_file]) == 0
        out = capsys.readouterr().out
        assert "|B|=15" in out
        assert "|E|=12" in out
        assert "|E_cut|=1" in out

    def test_events_listing(self, vme_file, capsys):
        main(["unfold", vme_file, "--events"])
        out = capsys.readouterr().out
        assert "[cutoff]" in out
        assert "lds+" in out


class TestStats:
    def test_prints_all_sections(self, vme_file, capsys):
        assert main(["stats", vme_file]) == 0
        out = capsys.readouterr().out
        assert "|S|=11" in out
        assert "prefix" in out
        assert "state graph: 14 states" in out


class TestLint:
    def test_registered_model_clean(self, capsys):
        assert main(["lint", "RING"]) == 0
        # the summary line uses the STG's own name, not the registry key
        assert "ring3: clean" in capsys.readouterr().out

    def test_warning_exit_code(self, capsys):
        assert main(["lint", "toggle"]) == 1
        out = capsys.readouterr().out
        assert "warning[S206]" in out
        assert "toggle: 1 warning" in out

    def test_error_exit_code_with_span_location(self, tmp_path, capsys):
        bad = tmp_path / "dead.g"
        bad.write_text(
            ".model dead\n.outputs z\n.graph\nz+ p1\np1 z-\nz- p0\n"
            "p0 z+\nq z+\n.marking { p0 }\n.end\n"
        )
        assert main(["lint", str(bad)]) == 2
        out = capsys.readouterr().out
        assert f"{bad}:8:1: error[W102]" in out

    def test_verbose_shows_decisions(self, vme_file, capsys):
        # a toggle bank example file is shipped in examples/
        from pathlib import Path

        example = Path(__file__).parents[1] / "examples" / "toggle_bank.g"
        assert main(["lint", str(example), "-v"]) == 0
        out = capsys.readouterr().out
        assert "info[C301]" in out
        assert "decides: csc=holds, usc=holds" in out

    def test_json_output(self, vme_file, capsys):
        import json

        assert main(["lint", vme_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stg"] == "vme-read"
        assert payload["exit_code"] == 0
        assert len(payload["rules_run"]) >= 10

    def test_json_array_for_many_targets(self, vme_file, capsys):
        import json

        assert main(["lint", vme_file, "RING", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 2

    def test_exit_code_is_worst_across_targets(self, vme_file, capsys):
        assert main(["lint", vme_file, "toggle"]) == 1

    def test_rule_selection(self, capsys):
        assert main(["lint", "toggle", "--rules", "W*"]) == 0
        assert "toggle: clean" in capsys.readouterr().out

    def test_no_prefilter(self, capsys):
        import json

        from pathlib import Path

        example = Path(__file__).parents[1] / "examples" / "toggle_bank.g"
        assert main(["lint", str(example), "--no-prefilter", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["decisions"] == {}

    def test_unknown_target(self, capsys):
        assert main(["lint", "NO-SUCH-MODEL"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_parse_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.g"
        bad.write_text(".model x\n.inputs a\n.outputs a\n.graph\n.end\n")
        assert main(["lint", str(bad)]) == 2
        assert "declared twice" in capsys.readouterr().err


class TestParseAge:
    def test_suffixes(self):
        from repro.cli import parse_age

        assert parse_age("30") == 30.0
        assert parse_age("45s") == 45.0
        assert parse_age("10m") == 600.0
        assert parse_age("2h") == 7200.0
        assert parse_age("1d") == 86400.0
        assert parse_age("2w") == 1209600.0
        assert parse_age("1.5h") == 5400.0

    def test_rejects_garbage(self):
        from repro.cli import parse_age
        from repro.exceptions import ReproError

        for bad in ("", "h", "-1d", "3y", "so on", "soon"):
            with pytest.raises(ReproError):
                parse_age(bad)


class TestCacheCLI:
    def _warm(self, tmp_path):
        """Verify RING once so the cache dir holds exactly one entry."""
        assert (
            main(
                [
                    "batch",
                    "RING",
                    "--jobs",
                    "0",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )

    def test_stats_empty(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert str(tmp_path) in out

    def test_stats_json(self, tmp_path, capsys):
        import json

        self._warm(tmp_path)
        capsys.readouterr()
        assert (
            main(["cache", "stats", "--cache-dir", str(tmp_path), "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["by_property"] == {"csc": 1}
        assert payload["total_bytes"] > 0

    def test_prune_respects_age(self, tmp_path, capsys):
        import json
        import os
        import time

        self._warm(tmp_path)
        capsys.readouterr()
        # young entry survives a 1-day cutoff
        assert (
            main(
                [
                    "cache",
                    "prune",
                    "--older-than",
                    "1d",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert "0 entr" in capsys.readouterr().out
        # age it past the cutoff and prune again
        (entry,) = list(tmp_path.glob("??/*.json"))
        week_ago = time.time() - 7 * 86400
        os.utime(entry, (week_ago, week_ago))
        assert (
            main(
                [
                    "cache",
                    "prune",
                    "--older-than",
                    "1d",
                    "--cache-dir",
                    str(tmp_path),
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["removed"] == 1
        assert not entry.exists()

    def test_prune_bad_age(self, tmp_path, capsys):
        assert (
            main(
                [
                    "cache",
                    "prune",
                    "--older-than",
                    "nonsense",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 2
        )
        assert "age" in capsys.readouterr().err.lower()


class TestServeCLIParsing:
    def test_serve_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--port",
                "0",
                "--workers",
                "2",
                "--queue-limit",
                "7",
                "--deadline",
                "30",
                "--no-cache",
                "--drain-timeout",
                "5",
            ]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.workers == 2
        assert args.queue_limit == 7
        assert args.deadline == 30.0
        assert args.no_cache is True
        assert args.drain_timeout == 5.0
