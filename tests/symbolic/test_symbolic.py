"""Tests for the symbolic (BDD) state-graph baseline."""

import pytest

from repro.exceptions import UnboundedNetError
from repro.models import TABLE1_BENCHMARKS, vme_bus, vme_bus_csc_resolved
from repro.stg.consistency import check_consistency
from repro.stg.stategraph import build_state_graph
from repro.symbolic import SymbolicSTG, symbolic_check, symbolic_check_both
from tests.conftest import SMALL_TABLE1, TABLE1_VERDICTS


class TestReachability:
    def test_vme_state_count(self, vme):
        code = check_consistency(vme).initial_code
        sym = SymbolicSTG(vme)
        reached = sym.reachable(code)
        assert sym.count_states(reached) == 14

    @pytest.mark.parametrize("name", SMALL_TABLE1[:8])
    def test_state_counts_match_explicit(self, name):
        stg = TABLE1_BENCHMARKS[name]()
        result = check_consistency(stg)
        sym = SymbolicSTG(stg)
        reached = sym.reachable(result.initial_code)
        assert sym.count_states(reached) == result.graph.num_states

    def test_reachable_set_membership(self, vme):
        """Every explicit (marking, code) state must satisfy the BDD."""
        result = check_consistency(vme)
        sym = SymbolicSTG(vme)
        reached = sym.reachable(result.initial_code)
        m = sym.manager
        for state in range(result.graph.num_states):
            marking = result.graph.markings[state]
            code = result.code_of_state(state)
            assignment = {}
            for p in range(vme.net.num_places):
                assignment[2 * p] = marking[p]
            for s in range(len(vme.signals)):
                assignment[2 * (vme.net.num_places + s)] = code[s]
            assert m.evaluate(reached, assignment)

    def test_unsafe_net_rejected(self):
        from repro.models.scalable import muller_ring
        from repro.petri.generators import cycle
        from repro.stg.stg import STG, SignalEdge

        # a 2-bounded STG: symbolic encoding must refuse
        stg = STG("unsafe", outputs=["a"])
        stg.add_place("p", tokens=2)
        stg.add_transition("a+", SignalEdge("a", 1))
        stg.add_arc("p", "a+")
        sym = SymbolicSTG(stg)
        with pytest.raises(UnboundedNetError):
            sym.initial_state((0,))


class TestConflicts:
    @pytest.mark.parametrize("name", SMALL_TABLE1)
    def test_verdicts_match_oracle(self, name):
        stg = TABLE1_BENCHMARKS[name]()
        graph = build_state_graph(stg)
        usc_report, csc_report = symbolic_check_both(stg)
        assert usc_report.holds == graph.has_usc()
        assert csc_report.holds == graph.has_csc()

    @pytest.mark.parametrize("name", ["RING", "DUP-4PH-A", "LAZYRING"])
    def test_conflict_pair_counts_match_explicit(self, name):
        """The symbolic method computes ALL conflicts; the counts must match
        the explicit state graph's pair enumeration."""
        stg = TABLE1_BENCHMARKS[name]()
        graph = build_state_graph(stg)
        usc_report, csc_report = symbolic_check_both(stg)
        assert usc_report.num_conflict_pairs == len(graph.usc_conflicts())
        assert csc_report.num_conflict_pairs == len(graph.csc_conflicts())

    def test_vme_witness_markings_reachable(self, vme):
        report = symbolic_check(vme, "csc")
        assert not report.holds
        first, second = report.witness
        reachable_supports = set()
        graph = build_state_graph(vme)
        for state in range(graph.num_states):
            support = frozenset(
                vme.net.place_name(p) for p in graph.marking(state).support()
            )
            reachable_supports.add(support)
        support_1 = frozenset(p for p, v in first.items() if v)
        support_2 = frozenset(p for p, v in second.items() if v)
        assert support_1 in reachable_supports
        assert support_2 in reachable_supports
        assert support_1 != support_2

    def test_both_shares_work(self, vme):
        usc_report, csc_report = symbolic_check_both(vme)
        assert usc_report.num_states == csc_report.num_states == 14
        assert not usc_report.holds and not csc_report.holds

    def test_bad_property_rejected(self, vme):
        with pytest.raises(ValueError):
            symbolic_check(vme, "bogus")

    def test_resolved_vme_clean(self, vme_csc):
        usc_report, csc_report = symbolic_check_both(vme_csc)
        assert usc_report.holds and csc_report.holds
        assert usc_report.num_conflict_pairs == 0


class TestTransitionRelation:
    def test_monolithic_relation_matches_explicit_edges(self, vme):
        """The (unused-by-default) monolithic relation must agree with the
        explicit successor relation on every reachable state."""
        result = check_consistency(vme)
        sym = SymbolicSTG(vme)
        relation = sym.transition_relation()
        m = sym.manager
        graph = result.graph
        n_places = vme.net.num_places
        for state in range(graph.num_states):
            marking = graph.markings[state]
            code = result.code_of_state(state)
            for transition, target in graph.successors[state]:
                target_code = result.code_of_state(target)
                assignment = {}
                for p in range(n_places):
                    assignment[2 * p] = marking[p]
                    assignment[2 * p + 1] = graph.markings[target][p]
                for s in range(len(vme.signals)):
                    assignment[2 * (n_places + s)] = code[s]
                    assignment[2 * (n_places + s) + 1] = target_code[s]
                assert m.evaluate(relation, assignment)
