"""Integration tests: the IP method vs the state-graph oracle.

This is the headline correctness claim of the reproduction: on every
benchmark STG the unfolding/integer-programming checkers must agree with the
explicit state graph on USC, CSC and normalcy.
"""

import pytest

from repro.core import check_csc, check_normalcy, check_usc
from repro.exceptions import SolverLimitError
from repro.models import TABLE1_BENCHMARKS, vme_bus, vme_bus_csc_resolved
from repro.stg.normalcy import check_normalcy_state_graph
from repro.stg.stategraph import build_state_graph
from tests.conftest import SMALL_TABLE1, TABLE1_VERDICTS


class TestAgainstOracle:
    def test_usc_and_csc_match_state_graph(self, table1_stg):
        graph = build_state_graph(table1_stg)
        assert check_usc(table1_stg).holds == graph.has_usc()
        assert check_csc(table1_stg).holds == graph.has_csc()

    @pytest.mark.parametrize("name", SMALL_TABLE1)
    def test_normalcy_matches_state_graph(self, name):
        stg = TABLE1_BENCHMARKS[name]()
        oracle = check_normalcy_state_graph(stg)
        report = check_normalcy(stg)
        assert report.normal == oracle.normal
        for signal, verdict in report.per_signal.items():
            assert verdict.normal == oracle.per_signal[signal].normal

    def test_vme_verdicts(self, vme, vme_csc):
        assert not check_usc(vme).holds
        assert not check_csc(vme).holds
        assert check_usc(vme_csc).holds
        assert check_csc(vme_csc).holds


class TestWitnesses:
    def test_csc_witness_replays_to_conflict(self, vme):
        report = check_csc(vme)
        witness = report.witness
        assert witness is not None
        net = vme.net
        m_a = net.initial_marking
        for name in witness.trace_a:
            m_a = net.fire_by_name(m_a, name)
        m_b = net.initial_marking
        for name in witness.trace_b:
            m_b = net.fire_by_name(m_b, name)
        assert m_a == witness.marking_a
        assert m_b == witness.marking_b
        assert m_a != m_b
        assert witness.out_a != witness.out_b

    def test_csc_witness_codes_equal(self, table1_stg):
        report = check_csc(table1_stg)
        if report.witness is None:
            return
        assert report.witness.code_a == report.witness.code_b

    def test_vme_witness_matches_figure1(self, vme):
        """The detected conflict must be the paper's: Out {d} vs {lds}."""
        report = check_csc(vme)
        outs = {report.witness.out_a, report.witness.out_b}
        assert outs == {frozenset({"d"}), frozenset({"lds"})}

    def test_usc_witness_on_ring(self):
        stg = TABLE1_BENCHMARKS["RING"]()
        report = check_usc(stg)
        assert not report.holds
        witness = report.witness
        assert witness.marking_a != witness.marking_b
        assert witness.code_a == witness.code_b


class TestCSCvsUSC:
    def test_ring_usc_fails_but_csc_holds(self):
        """RING exercises the USC-first strategy: its conflicts are all
        USC-but-not-CSC (quiescent states enable only inputs)."""
        stg = TABLE1_BENCHMARKS["RING"]()
        assert not check_usc(stg).holds
        report = check_csc(stg)
        assert report.holds
        assert report.usc_only_candidates > 0


class TestNormalcyIP:
    def test_figure3_normalcy_violation(self, vme_csc):
        report = check_normalcy(vme_csc)
        assert not report.normal
        assert report.violating_signals() == ["csc"]
        verdict = report.per_signal["csc"]
        assert verdict.p_witness is not None
        assert verdict.n_witness is not None

    def test_figure3_witness_traces_replay(self, vme_csc):
        report = check_normalcy(vme_csc)
        verdict = report.per_signal["csc"]
        net = vme_csc.net
        for witness in (verdict.p_witness, verdict.n_witness):
            m = net.initial_marking
            for name in witness.trace_a:
                m = net.fire_by_name(m, name)
            assert m == witness.marking_a

    def test_normalcy_signal_subset(self, vme_csc):
        report = check_normalcy(vme_csc, signals=["dtack"])
        assert list(report.per_signal) == ["dtack"]
        assert report.per_signal["dtack"].normal


class TestOptions:
    def test_node_budget_raises(self):
        stg = TABLE1_BENCHMARKS["CF-SYM-B-CSC"]()
        with pytest.raises(SolverLimitError):
            check_usc(stg, node_budget=10)

    def test_window_search_ablation_agrees(self):
        for name in ("RING", "CF-SYM-A-CSC", "DUP-4PH-A"):
            stg = TABLE1_BENCHMARKS[name]()
            fast = check_csc(stg)
            slow = check_csc(stg, use_window_search=False)
            assert fast.holds == slow.holds

    def test_forced_pair_search_agrees(self):
        for name in ("CF-SYM-A-CSC", "RING"):
            stg = TABLE1_BENCHMARKS[name]()
            auto = check_usc(stg)
            forced = check_usc(stg, nested=False)
            assert auto.holds == forced.holds

    def test_prebuilt_prefix_accepted(self, vme):
        from repro.unfolding import unfold

        prefix = unfold(vme)
        report = check_csc(prefix)
        assert not report.holds

    def test_prefix_stats_reported(self, vme):
        report = check_csc(vme)
        assert report.prefix_stats == {
            "conditions": 15,
            "events": 12,
            "cutoffs": 1,
        }
