"""Parallel/sequential equivalence of the frontier-split search driver.

The determinism contract of docs/parallelism.md: for any model, property and
worker count, the parallel path must report the same verdict and the *same*
witness as the sequential search, and a fully consumed enumeration must
merge per-shard stats to exactly the sequential totals.  ``REPRO_TEST_WORKERS``
sets the worker count exercised here (default 2; CI runs the matrix with it
set explicitly).
"""

import os
import pickle

import pytest

from repro.core import check_csc, check_normalcy, check_usc
from repro.core.context import SolverContext, SolverSnapshot
from repro.core.parallel import (
    KIND_PAIRS,
    KIND_WINDOW,
    ParallelSearch,
    ShardTask,
    _run_search_shard,
)
from repro.core.search import MODE_EQUAL, MODE_LEQ, PairSearch
from repro.core.window import WindowSearch
from repro.exceptions import SolverError, SolverLimitError
from repro.models import TABLE1_BENCHMARKS
from repro.models.scalable import muller_pipeline
from repro.unfolding import unfold

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

NORMALCY_MODELS = ["LAZYRING", "RING", "DUP-MOD-A"]


def _witness_key(report):
    witness = report.witness
    if witness is None:
        return None
    return (
        witness.kind,
        witness.code_a,
        witness.code_b,
        tuple(witness.trace_a),
        tuple(witness.trace_b),
    )


def _stats_key(stats):
    return (
        stats.nodes,
        stats.leaves,
        stats.pruned_balance,
        stats.pruned_structure,
        stats.solutions,
    )


class TestCheckerEquivalence:
    """Golden models × properties: identical verdicts and witnesses."""

    @pytest.mark.parametrize("prop", ["usc", "csc"])
    def test_coding_matches_sequential(self, table1_stg, prop):
        check = check_usc if prop == "usc" else check_csc
        sequential = check(table1_stg)
        parallel = check(table1_stg, workers=WORKERS)
        assert parallel.holds == sequential.holds
        assert _witness_key(parallel) == _witness_key(sequential)
        assert (
            parallel.usc_only_candidates == sequential.usc_only_candidates
        )

    @pytest.mark.parametrize("prop", ["usc", "csc"])
    def test_coding_matches_inline_shards(self, table1_stg, prop):
        # shard splitting alone (no forking) must also be equivalent
        check = check_usc if prop == "usc" else check_csc
        sequential = check(table1_stg)
        sharded = check(table1_stg, workers=0, shards=6)
        assert sharded.holds == sequential.holds
        assert _witness_key(sharded) == _witness_key(sequential)

    @pytest.mark.parametrize("name", NORMALCY_MODELS)
    def test_normalcy_matches_sequential(self, name):
        stg = TABLE1_BENCHMARKS[name]()
        sequential = check_normalcy(stg)
        parallel = check_normalcy(stg, workers=WORKERS)
        assert parallel.normal == sequential.normal
        for signal, verdict in sequential.per_signal.items():
            other = parallel.per_signal[signal]
            assert (other.p_normal, other.n_normal) == (
                verdict.p_normal,
                verdict.n_normal,
            )
            for a, b in (
                (other.p_witness, verdict.p_witness),
                (other.n_witness, verdict.n_witness),
            ):
                assert (a is None) == (b is None)
                if a is not None:
                    assert (a.trace_a, a.trace_b) == (b.trace_a, b.trace_b)


class TestStatsParity:
    """Merged shard stats equal the sequential counters exactly."""

    @pytest.fixture(scope="class")
    def muller_ctx(self):
        return SolverContext(unfold(muller_pipeline(5)))

    def test_shards_one_equals_sequential(self, muller_ctx):
        sequential = PairSearch(muller_ctx, mode=MODE_EQUAL, nested_only=True)
        list(sequential.solutions())
        parallel = ParallelSearch(
            muller_ctx,
            kind=KIND_PAIRS,
            mode=MODE_EQUAL,
            nested_only=True,
            shards=1,
        )
        list(parallel.solutions())
        assert _stats_key(parallel.stats) == _stats_key(sequential.stats)

    @pytest.mark.parametrize("shards", [3, 8])
    @pytest.mark.parametrize(
        "kind,mode",
        [
            (KIND_PAIRS, MODE_EQUAL),
            (KIND_PAIRS, MODE_LEQ),
            (KIND_WINDOW, MODE_EQUAL),
        ],
    )
    def test_split_enumeration_parity(self, muller_ctx, kind, mode, shards):
        nested = kind == KIND_WINDOW or mode == MODE_EQUAL
        if kind == KIND_WINDOW:
            sequential = WindowSearch(muller_ctx)
        else:
            sequential = PairSearch(
                muller_ctx, mode=mode, nested_only=nested and mode == MODE_EQUAL
            )
        expected = list(sequential.solutions())
        parallel = ParallelSearch(
            muller_ctx,
            kind=kind,
            mode=mode,
            nested_only=nested and mode == MODE_EQUAL,
            workers=0,
            shards=shards,
        )
        assert list(parallel.solutions()) == expected
        assert _stats_key(parallel.stats) == _stats_key(sequential.stats)

    def test_forked_enumeration_parity(self, muller_ctx):
        sequential = WindowSearch(muller_ctx)
        expected = list(sequential.solutions())
        parallel = ParallelSearch(
            muller_ctx, kind=KIND_WINDOW, workers=WORKERS
        )
        assert list(parallel.solutions()) == expected
        assert _stats_key(parallel.stats) == _stats_key(sequential.stats)


class TestFrontier:
    @pytest.fixture(scope="class")
    def ctx(self):
        return SolverContext(unfold(muller_pipeline(4)))

    def test_frontier_is_deterministic(self, ctx):
        first = PairSearch(ctx, mode=MODE_EQUAL, nested_only=True)
        second = PairSearch(ctx, mode=MODE_EQUAL, nested_only=True)
        depth = min(4, ctx.num_vars)
        assert first.frontier_from(first.root_shard(), depth) == (
            second.frontier_from(second.root_shard(), depth)
        )

    def test_frontier_covers_tree(self, ctx):
        # resuming every shard reproduces the sequential enumeration exactly
        search = PairSearch(ctx, mode=MODE_LEQ)
        expected = list(PairSearch(ctx, mode=MODE_LEQ).solutions())
        collected = []
        for shard in search.frontier_from(search.root_shard(), 3):
            collected.extend(search.solutions_from(shard))
        assert collected == expected

    def test_shallow_shard_passes_through(self, ctx):
        search = PairSearch(ctx, mode=MODE_EQUAL, nested_only=True)
        root = search.root_shard()
        assert search.frontier_from(root, 0) == [root]

    def test_snapshot_pickle_roundtrip(self, ctx):
        snapshot = ctx.snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert isinstance(clone, SolverSnapshot)
        for attr in SolverSnapshot.__slots__:
            assert getattr(clone, attr) == getattr(snapshot, attr)

    def test_shard_runner_roundtrip(self, ctx):
        # the registered pool runner, driven directly, matches a local walk
        search = WindowSearch(ctx)
        shard = search.frontier_from(search.root_shard(), 2)[0]
        task = ShardTask(
            snapshot=ctx.snapshot(),
            kind=KIND_WINDOW,
            mode=MODE_EQUAL,
            nested_only=False,
            require_marking_change=True,
            node_budget=None,
            index=0,
            shard=pickle.loads(pickle.dumps(shard)),
        )
        result = _run_search_shard(pickle.loads(pickle.dumps(task)))
        local = WindowSearch(ctx)
        assert result.solutions == list(local.solutions_from(shard))
        assert result.limit is None


class TestDriverBehaviour:
    @pytest.fixture(scope="class")
    def ctx(self):
        return SolverContext(unfold(muller_pipeline(5)))

    def test_no_split_requested_is_sequential_walk(self, ctx):
        parallel = ParallelSearch(ctx, kind=KIND_PAIRS, mode=MODE_LEQ, workers=0)
        assert parallel.target_shards == 1
        sequential = PairSearch(ctx, mode=MODE_LEQ)
        assert list(parallel.solutions()) == list(sequential.solutions())

    def test_budget_propagates_to_workers(self, ctx):
        parallel = ParallelSearch(
            ctx,
            kind=KIND_PAIRS,
            mode=MODE_LEQ,
            workers=WORKERS,
            node_budget=40,
        )
        with pytest.raises(SolverLimitError):
            list(parallel.solutions())

    def test_early_exit_cancels_cleanly(self, ctx):
        parallel = ParallelSearch(
            ctx, kind=KIND_PAIRS, mode=MODE_LEQ, workers=WORKERS
        )
        generator = parallel.solutions()
        assert next(generator) is not None
        generator.close()  # must terminate the pool without hanging

    def test_rejects_snapshot_context(self, ctx):
        with pytest.raises(SolverError):
            ParallelSearch(ctx.snapshot(), kind=KIND_PAIRS)

    def test_rejects_bad_shard_count(self, ctx):
        with pytest.raises(SolverError):
            ParallelSearch(ctx, kind=KIND_PAIRS, shards=0)

    def test_obs_counters(self, ctx):
        from repro import obs

        tracer = obs.get_tracer()
        was_enabled = tracer.enabled
        tracer.enable()
        tracer.reset()
        try:
            parallel = ParallelSearch(
                ctx, kind=KIND_PAIRS, mode=MODE_LEQ, workers=0, shards=4
            )
            list(parallel.solutions())
            counters = tracer.snapshot()["counters"]
            assert counters.get("search.shards", 0) >= 4
            assert "search.cancelled" not in counters
        finally:
            tracer.reset()
            if not was_enabled:
                tracer.disable()
