"""Unit tests for the pair branch-and-bound search."""

import pytest

from repro.core.context import SolverContext
from repro.core.search import MODE_EQUAL, MODE_LEQ, PairSearch
from repro.exceptions import SolverLimitError, SolverError
from repro.models import TABLE1_BENCHMARKS, vme_bus
from repro.petri.generators import fork_join
from repro.unfolding import unfold


@pytest.fixture
def vme_ctx(vme):
    return SolverContext(unfold(vme))


class TestContext:
    def test_free_variables_exclude_cutoffs(self, vme_ctx):
        prefix = vme_ctx.prefix
        assert vme_ctx.num_vars == prefix.num_events - prefix.num_cutoffs
        for e in prefix.cutoff_events:
            assert e not in vme_ctx.position

    def test_topological_positions(self, vme_ctx):
        for i in range(vme_ctx.num_vars):
            assert vme_ctx.pred_pos[i] < (1 << i), "preds must come earlier"

    def test_suffix_counts_decreasing(self, vme_ctx):
        for s in range(vme_ctx.num_signals):
            values = [row[s] for row in vme_ctx.suffix_count]
            assert values == sorted(values, reverse=True)
            assert values[-1] == 0

    def test_suffix_split_sums(self, vme_ctx):
        for i in range(vme_ctx.num_vars + 1):
            for s in range(vme_ctx.num_signals):
                assert (
                    vme_ctx.suffix_plus[i][s] + vme_ctx.suffix_minus[i][s]
                    == vme_ctx.suffix_count[i][s]
                )

    def test_requires_stg(self):
        prefix = unfold(fork_join(2))
        with pytest.raises(SolverError):
            SolverContext(prefix)

    def test_initial_code_inferred(self, vme_ctx):
        assert vme_ctx.initial_code() == (0, 0, 0, 0, 0)

    def test_marking_of_empty_mask(self, vme_ctx, vme):
        assert vme_ctx.marking_of(0) == vme.net.initial_marking

    def test_trace_of_roundtrip(self, vme_ctx, vme):
        # take the first three positions as a configuration prefix
        mask = 0b111
        trace = vme_ctx.trace_of(mask)
        m = vme.net.initial_marking
        for name in trace:
            m = vme.net.fire_by_name(m, name)
        assert m == vme_ctx.marking_of(mask)


class TestSolutionProperties:
    def test_solutions_are_configurations_with_equal_codes(self, vme_ctx):
        from repro.core.closure import is_compatible

        search = PairSearch(vme_ctx, mode=MODE_EQUAL, nested_only=False)
        count = 0
        for mask_a, mask_b in search.solutions():
            count += 1
            assert mask_a != mask_b
            assert vme_ctx.code_change_of(mask_a) == vme_ctx.code_change_of(mask_b)
            for mask in (mask_a, mask_b):
                events = 0
                for e in vme_ctx.positions_to_events(mask):
                    events |= 1 << e
                assert is_compatible(vme_ctx.relations, events)
        assert count > 0

    def test_leq_mode_orders_codes(self, vme_ctx):
        search = PairSearch(vme_ctx, mode=MODE_LEQ)
        seen = 0
        for mask_a, mask_b in search.solutions():
            change_a = vme_ctx.code_change_of(mask_a)
            change_b = vme_ctx.code_change_of(mask_b)
            assert all(x <= y for x, y in zip(change_a, change_b))
            seen += 1
            if seen > 200:
                break
        assert seen > 0

    def test_nested_mode_solutions_nested(self, vme_ctx):
        search = PairSearch(vme_ctx, mode=MODE_EQUAL, nested_only=True)
        for mask_a, mask_b in search.solutions():
            assert mask_a & ~mask_b == 0  # C' subset of C''

    def test_symmetry_breaking_halves_space(self, vme_ctx):
        """Without nesting, each unordered pair appears exactly once."""
        search = PairSearch(vme_ctx, mode=MODE_EQUAL, nested_only=False)
        seen = set()
        for mask_a, mask_b in search.solutions():
            assert (mask_b, mask_a) not in seen
            seen.add((mask_a, mask_b))


class TestAblationSwitches:
    def test_no_propagation_agrees_on_tiny_model(self):
        stg = TABLE1_BENCHMARKS["DUP-4PH-A"]()
        ctx = SolverContext(unfold(stg))
        fast = PairSearch(ctx, nested_only=False)
        slow = PairSearch(
            ctx, nested_only=False, use_order_propagation=False
        )
        fast_solutions = {tuple(s) for s in fast.solutions()}
        slow_solutions = {tuple(s) for s in slow.solutions()}
        assert fast_solutions == slow_solutions
        assert slow.stats.nodes > fast.stats.nodes

    def test_no_balance_pruning_agrees(self, vme_ctx):
        fast = PairSearch(vme_ctx, nested_only=False)
        slow = PairSearch(vme_ctx, nested_only=False, use_balance_pruning=False)
        assert {tuple(s) for s in fast.solutions()} == {
            tuple(s) for s in slow.solutions()
        }
        assert slow.stats.leaves >= fast.stats.leaves

    def test_node_budget(self, vme_ctx):
        search = PairSearch(vme_ctx, node_budget=5)
        with pytest.raises(SolverLimitError):
            list(search.solutions())

    def test_bad_mode_rejected(self, vme_ctx):
        with pytest.raises(ValueError):
            PairSearch(vme_ctx, mode="bogus")

    def test_stats_populated(self, vme_ctx):
        search = PairSearch(vme_ctx)
        list(search.solutions())
        assert search.stats.nodes > 0
        assert search.stats.solutions == search.stats.solutions
