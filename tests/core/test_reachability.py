"""Tests for extended reachability analysis and deadlock checking (Sec. 5)."""

import pytest

from repro.core.reachability import (
    LinearConstraint,
    check_deadlock,
    constraint_on_places,
    find_configuration,
    make_context,
    marking_expression,
)
from repro.models import TABLE1_BENCHMARKS, vme_bus
from repro.petri.generators import chain, choice, cycle, fork_join
from repro.petri.net import PetriNet
from repro.unfolding import unfold
from repro.unfolding.configurations import marking_of
from repro.utils.bitset import BitSet


class TestMarkingExpression:
    def test_expression_evaluates_to_marking(self, vme):
        """For every local configuration, the affine expression must equal
        the real marking component."""
        prefix = unfold(vme)
        ctx = make_context(prefix)
        for event in prefix.events:
            if event.is_cutoff:
                continue
            mask = 0
            for e in event.history:
                pos = ctx.position.get(e)
                assert pos is not None
                mask |= 1 << pos
            marking = ctx.marking_of(mask)
            for place in range(vme.net.num_places):
                const, coeffs = marking_expression(ctx, place)
                value = const + sum(
                    c for i, c in enumerate(coeffs) if (mask >> i) & 1
                )
                assert value == marking[place]

    def test_constraint_on_places_shifts_rhs(self, vme):
        ctx = make_context(unfold(vme))
        place = vme.net.place_index("<dsr+,lds+>")
        constraint = constraint_on_places(ctx, {place: 1}, ">=", 1)
        assert constraint.sense == ">="


class TestFindConfiguration:
    def test_unconstrained_returns_some_configuration(self, vme):
        """With no constraints any configuration works; the solver prefers
        including events (deadlocks tend to live deep), so it returns a
        maximal configuration."""
        events = find_configuration(vme)
        assert events is not None
        prefix = unfold(vme)
        from repro.unfolding.configurations import is_configuration

        assert is_configuration(prefix, BitSet.from_iterable(events))

    def test_reach_specific_place(self, vme):
        """Find an execution marking the place between d+ and dtack+."""
        prefix = unfold(vme)
        ctx = make_context(prefix)
        place = vme.net.place_index("<d+,dtack+>")
        constraint = constraint_on_places(ctx, {place: 1}, ">=", 1)
        events = find_configuration(prefix, [constraint], context=ctx)
        assert events is not None
        marking = marking_of(prefix, BitSet.from_iterable(events))
        assert marking[place] == 1

    def test_unreachable_constraint(self, vme):
        prefix = unfold(vme)
        ctx = make_context(prefix)
        # two mutually exclusive places marked simultaneously
        p1 = vme.net.place_index("<dsr+,lds+>")
        p2 = vme.net.place_index("<lds+,ldtack+>")
        constraints = [
            constraint_on_places(ctx, {p1: 1}, ">=", 1),
            constraint_on_places(ctx, {p2: 1}, ">=", 1),
        ]
        assert find_configuration(prefix, constraints, context=ctx) is None

    def test_equality_sense(self, vme):
        prefix = unfold(vme)
        ctx = make_context(prefix)
        place = vme.net.place_index("<dtack-,dsr+>")
        constraint = constraint_on_places(ctx, {place: 1}, "==", 0)
        events = find_configuration(prefix, [constraint], context=ctx)
        assert events is not None

    def test_bad_sense_rejected(self):
        with pytest.raises(ValueError):
            LinearConstraint((1,), "!", 0)


class TestDeadlock:
    def test_chain_deadlocks(self):
        trace = check_deadlock(chain(3))
        assert trace is not None
        net = chain(3)
        m = net.initial_marking
        for name in trace:
            m = net.fire_by_name(m, name)
        assert not net.enabled(m)

    def test_cycle_is_live(self):
        assert check_deadlock(cycle(5)) is None

    def test_fork_join_deadlocks_at_done(self):
        # fork_join terminates: the final marking {done} enables nothing
        trace = check_deadlock(fork_join(3))
        assert trace is not None
        assert sorted(trace) == sorted(["fork", "work0", "work1", "work2", "join"])

    def test_choice_deadlocks_at_done(self):
        trace = check_deadlock(choice(3, 2))
        assert trace is not None
        assert len(trace) == 2  # one branch of length 2

    def test_benchmark_stgs_are_live(self, table1_stg):
        assert check_deadlock(table1_stg) is None

    def test_partial_deadlock_found(self):
        """A net where one choice branch deadlocks and the other loops."""
        net = PetriNet("trap")
        net.add_place("start", tokens=1)
        net.add_place("stuck")
        net.add_transition("good")
        net.add_transition("bad")
        net.add_arc("start", "good")
        net.add_arc("good", "start")
        net.add_arc("start", "bad")
        net.add_arc("bad", "stuck")
        trace = check_deadlock(net)
        assert trace == ["bad"]
