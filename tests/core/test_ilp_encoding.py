"""Tests for the explicit Section 3 ILP encoding (the ablation baseline)."""

import pytest

from repro.core.ilp_encoding import check_usc_ilp, encode_usc_system
from repro.models import TABLE1_BENCHMARKS, vme_bus, vme_bus_csc_resolved
from repro.stg.stategraph import build_state_graph
from repro.unfolding import unfold
from repro.unfolding.configurations import is_configuration, marking_of
from repro.utils.bitset import BitSet


class TestEncoding:
    def test_variable_count(self, vme):
        prefix = unfold(vme)
        problem, _ = encode_usc_system(prefix)
        assert problem.num_vars == 2 * prefix.num_events

    def test_requires_stg(self):
        from repro.petri.generators import fork_join

        with pytest.raises(ValueError):
            encode_usc_system(unfold(fork_join(2)))

    def test_solutions_are_valid_conflict_pairs(self, vme):
        """Every ILP solution must decode into two configurations with equal
        codes and lexicographically ordered different markings."""
        from repro.ilp.solver import BranchAndBoundSolver

        prefix = unfold(vme)
        problem, decode = encode_usc_system(prefix)
        solver = BranchAndBoundSolver(problem)
        count = 0
        for solution in solver.solutions():
            events_a, events_b = decode(solution)
            config_a = BitSet.from_iterable(events_a)
            config_b = BitSet.from_iterable(events_b)
            # compatibility constraints guarantee configurations (acyclic)
            assert is_configuration(prefix, config_a)
            assert is_configuration(prefix, config_b)
            mark_a = marking_of(prefix, config_a)
            mark_b = marking_of(prefix, config_b)
            assert mark_a != mark_b
            assert mark_a < mark_b or mark_b < mark_a
            count += 1
            if count > 50:
                break
        assert count > 0


class TestVerdicts:
    @pytest.mark.parametrize(
        "name",
        ["RING", "DUP-4PH-A", "DUP-MOD-A", "CF-SYM-A-CSC"],
    )
    def test_agrees_with_oracle(self, name):
        stg = TABLE1_BENCHMARKS[name]()
        graph = build_state_graph(stg)
        holds, witness, _ = check_usc_ilp(unfold(stg))
        assert holds == graph.has_usc()
        if witness is not None:
            events_a, events_b = witness
            assert events_a != events_b

    def test_vme_pair(self, vme, vme_csc):
        assert not check_usc_ilp(unfold(vme))[0]
        assert check_usc_ilp(unfold(vme_csc))[0]

    def test_node_budget(self, vme):
        from repro.exceptions import SolverLimitError

        with pytest.raises(SolverLimitError):
            check_usc_ilp(unfold(vme), node_budget=3)

    def test_ilp_visits_more_nodes_than_core(self):
        """The ablation claim: the structural search beats the generic
        solver on the same instance."""
        from repro.core import check_usc

        stg = TABLE1_BENCHMARKS["CF-SYM-A-CSC"]()
        prefix = unfold(stg)
        _, _, ilp_stats = check_usc_ilp(prefix)
        core_report = check_usc(prefix)
        assert ilp_stats.nodes > core_report.search_stats.nodes
