"""Tests for the kernel / LP relaxation prescreens."""

import pytest

from repro.core import check_usc
from repro.core.context import SolverContext
from repro.core.prescreen import kernel_prescreen, lp_prescreen
from repro.models import TABLE1_BENCHMARKS, vme_bus
from repro.models._build import seq
from repro.stg.stategraph import build_state_graph
from repro.stg.stg import STG, SignalEdge
from repro.unfolding import unfold


def toggle_stg():
    """a+ and a- act on the same two places in opposite directions — the
    kernel test's conclusive showcase."""
    stg = STG("toggle", outputs=["a"])
    stg.add_place("P0", tokens=1)
    stg.add_place("P1")
    stg.add_transition("a+", SignalEdge("a", 1))
    stg.add_transition("a-", SignalEdge("a", -1))
    stg.add_arc("P0", "a+")
    stg.add_arc("a+", "P1")
    stg.add_arc("P1", "a-")
    stg.add_arc("a-", "P0")
    return stg


def handshake_stg():
    stg = STG("hs", inputs=["a"], outputs=["b"])
    seq(stg, "a+", "b+", "a-", "b-")
    seq(stg, "b-", "a+", marked=True)
    return stg


class TestKernel:
    def test_conclusive_on_toggle(self):
        ctx = SolverContext(unfold(toggle_stg()))
        assert kernel_prescreen(ctx) is False

    def test_inconclusive_on_handshake(self):
        ctx = SolverContext(unfold(handshake_stg()))
        assert kernel_prescreen(ctx) is None

    @pytest.mark.parametrize("name", ["RING", "CF-SYM-A-CSC", "LAZYRING"])
    def test_inconclusive_on_benchmarks(self, name):
        """Real controllers defeat the pure relaxation — the observation
        that motivates the paper's structural search."""
        ctx = SolverContext(unfold(TABLE1_BENCHMARKS[name]()))
        assert kernel_prescreen(ctx) is None


class TestLP:
    def test_conclusive_on_toggle(self):
        ctx = SolverContext(unfold(toggle_stg()))
        assert lp_prescreen(ctx) is False

    def test_fractional_solutions_defeat_it(self):
        """Even the box+compatibility relaxation admits half-integral
        windows on a plain handshake — relaxations alone cannot decide
        coding conflicts."""
        ctx = SolverContext(unfold(handshake_stg()))
        assert lp_prescreen(ctx) is None


class TestSoundness:
    @pytest.mark.parametrize(
        "builder",
        [toggle_stg, handshake_stg, vme_bus]
        + [TABLE1_BENCHMARKS[n] for n in ("RING", "CF-SYM-A-CSC")],
    )
    def test_false_implies_usc_holds(self, builder):
        """A conclusive prescreen must agree with the oracle."""
        stg = builder()
        ctx = SolverContext(unfold(stg))
        for screen in (kernel_prescreen, lp_prescreen):
            if screen(ctx) is False:
                assert build_state_graph(stg).has_usc()

    def test_check_usc_with_prescreens(self):
        stg = toggle_stg()
        for prescreen in ("kernel", "lp", None):
            report = check_usc(stg, prescreen=prescreen)
            assert report.holds
        # the conclusive prescreen answers without any search nodes
        assert check_usc(stg, prescreen="kernel").search_stats.nodes == 0
        assert check_usc(stg, prescreen=None).search_stats.nodes > 0
