"""Tests for the single-vector window search (Proposition 1 + marking eq.)."""

import pytest

from repro.core.context import SolverContext
from repro.core.search import MODE_EQUAL, PairSearch
from repro.core.window import WindowSearch
from repro.exceptions import SolverLimitError
from repro.models import TABLE1_BENCHMARKS, vme_bus
from repro.models.scalable import muller_pipeline
from repro.unfolding import unfold


def context_of(stg):
    return SolverContext(unfold(stg))


class TestSoundness:
    @pytest.mark.parametrize("name", ["RING", "CF-SYM-A-CSC", "CF-SYM-B-CSC"])
    def test_windows_embed_into_valid_pairs(self, name):
        """Every window solution must decode into two configurations with
        equal codes and different markings."""
        from repro.core.closure import is_compatible

        ctx = context_of(TABLE1_BENCHMARKS[name]())
        search = WindowSearch(ctx)
        for closure_mask, window_mask in search.solutions():
            mask_b = closure_mask
            mask_a = closure_mask & ~window_mask
            assert window_mask, "window must be non-empty"
            for mask in (mask_a, mask_b):
                events = 0
                for e in ctx.positions_to_events(mask):
                    events |= 1 << e
                assert is_compatible(ctx.relations, events)
            assert ctx.code_change_of(mask_a) == ctx.code_change_of(mask_b)
            assert ctx.marking_of(mask_a) != ctx.marking_of(mask_b)


class TestCompleteness:
    @pytest.mark.parametrize(
        "name", ["RING", "CF-SYM-A-CSC", "DUP-4PH-A", "DUP-MOD-A"]
    )
    def test_window_existence_matches_pair_search(self, name):
        """On dynamically conflict-free STGs the window search finds a USC
        conflict iff the (complete) pair search does."""
        stg = TABLE1_BENCHMARKS[name]()
        # only run where the structural DCF condition holds
        net = stg.net
        if any(len(net.place_postset(p)) > 1 for p in range(net.num_places)):
            pytest.skip("not structurally conflict-free")
        ctx = context_of(stg)
        window_found = False
        for closure_mask, window_mask in WindowSearch(ctx).solutions():
            window_found = True
            break
        pair_found = False
        for mask_a, mask_b in PairSearch(
            ctx, mode=MODE_EQUAL, nested_only=True
        ).solutions():
            if ctx.marking_of(mask_a) != ctx.marking_of(mask_b):
                pair_found = True
                break
        assert window_found == pair_found

    def test_muller_pipeline_has_no_window(self):
        ctx = context_of(muller_pipeline(4))
        assert not list(WindowSearch(ctx).solutions())


class TestEfficiency:
    def test_window_search_visits_fewer_nodes(self):
        """The ablation claim: on conflict-free marked graphs the window
        search beats the pair search by orders of magnitude."""
        stg = TABLE1_BENCHMARKS["CF-SYM-B-CSC"]()
        ctx = context_of(stg)
        window = WindowSearch(ctx)
        list(window.solutions())
        pair = PairSearch(ctx, mode=MODE_EQUAL, nested_only=True)
        list(pair.solutions())
        assert window.stats.nodes * 2 < pair.stats.nodes

    def test_node_budget(self):
        ctx = context_of(TABLE1_BENCHMARKS["CF-SYM-B-CSC"]())
        with pytest.raises(SolverLimitError):
            list(WindowSearch(ctx, node_budget=10).solutions())


class TestMarkingDelta:
    def test_require_marking_change_filters_cycles(self, vme):
        """Full VME cycles change no marking: with the marking-change
        requirement disabled they appear as balanced windows, with it they
        are filtered out."""
        ctx = context_of(vme)
        with_filter = {
            w for _, w in WindowSearch(ctx, require_marking_change=True).solutions()
        }
        without_filter = {
            w for _, w in WindowSearch(ctx, require_marking_change=False).solutions()
        }
        assert with_filter <= without_filter
        for window in without_filter - with_filter:
            mask = window
            # such a window's original-net Parikh vector is a T-invariant
            from repro.petri.incidence import incidence_matrix
            import numpy as np

            parikh = np.zeros(vme.net.num_transitions, dtype=int)
            for e in ctx.positions_to_events(mask):
                parikh[ctx.prefix.events[e].transition] += 1
            assert not (incidence_matrix(vme.net) @ parikh).any()
