"""Tests for Unf-compatibility and minimal compatible closures (Thms 1-2)."""

import pytest

from repro.core.closure import (
    has_compatible_closure,
    is_compatible,
    minimal_compatible_closure,
)
from repro.models import vme_bus
from repro.petri.generators import choice
from repro.unfolding import PrefixRelations, unfold
from repro.unfolding.configurations import is_configuration
from repro.utils.bitset import BitSet


@pytest.fixture
def vme_rel(vme):
    prefix = unfold(vme)
    return prefix, PrefixRelations(prefix)


class TestTheorem1:
    def test_compatible_iff_configuration(self, vme_rel):
        """Theorem 1: the Unf-compatible vectors are exactly the
        characteristic vectors of configurations."""
        prefix, rel = vme_rel
        for bits in range(1 << prefix.num_events):
            assert is_compatible(rel, bits) == is_configuration(
                prefix, BitSet(bits)
            )


class TestTheorem2:
    def test_closure_exists_iff_conflict_free(self, vme_rel):
        prefix, rel = vme_rel
        for bits in range(0, 1 << prefix.num_events, 7):  # stride for speed
            closure = minimal_compatible_closure(rel, bits)
            assert (closure is not None) == has_compatible_closure(rel, bits)

    def test_closure_is_minimal_and_compatible(self, vme_rel):
        prefix, rel = vme_rel
        for bits in range(0, 1 << prefix.num_events, 11):
            closure = minimal_compatible_closure(rel, bits)
            if closure is None:
                continue
            assert closure & bits == bits  # contains the seed
            assert is_compatible(rel, closure)
            # minimality: removing any added event breaks compatibility or
            # containment
            added = closure & ~bits
            rest = added
            while rest:
                low = rest & -rest
                smaller = closure & ~low
                assert not (
                    is_compatible(rel, smaller) and smaller & bits == bits
                )
                rest ^= low

    def test_conflicting_seed_has_no_closure(self):
        prefix = unfold(choice(2, 1))
        rel = PrefixRelations(prefix)
        # find two events in direct conflict
        pair = None
        for e in range(prefix.num_events):
            for f in range(e + 1, prefix.num_events):
                if rel.in_conflict(e, f):
                    pair = (1 << e) | (1 << f)
                    break
            if pair:
                break
        assert pair is not None
        assert not has_compatible_closure(rel, pair)
        assert minimal_compatible_closure(rel, pair) is None

    def test_closure_of_configuration_is_itself(self, vme_rel):
        prefix, rel = vme_rel
        for event in prefix.events:
            mask = event.history.bits
            assert minimal_compatible_closure(rel, mask) == mask

    def test_closure_of_empty_is_empty(self, vme_rel):
        _, rel = vme_rel
        assert minimal_compatible_closure(rel, 0) == 0
