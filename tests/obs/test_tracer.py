"""Tracer unit tests: spans, counters, gauges, timers, phase aggregation."""

import threading

import pytest

from repro.obs.tracer import PHASE_PREFIXES, Span, Tracer, phase_times_from
from repro.obs.tracer import _NOOP


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


class TestSpans:
    def test_records_interval(self, tracer):
        with tracer.span("unfold.run"):
            pass
        (span,) = tracer.spans
        assert span.name == "unfold.run"
        assert span.end >= span.start
        assert span.parent_id is None

    def test_nesting_sets_parent(self, tracer):
        with tracer.span("search.window") as outer:
            with tracer.span("closure.window") as inner:
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["closure.window"].parent_id == outer.span_id
        assert by_name["search.window"].parent_id is None
        assert inner.span_id != outer.span_id

    def test_exception_still_closes(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("unfold.run"):
                raise RuntimeError("boom")
        (span,) = tracer.spans
        assert span.end >= span.start
        # the parent stack must be unwound, not corrupted
        with tracer.span("search.pairs"):
            pass
        assert tracer.spans[-1].parent_id is None

    def test_exception_not_swallowed_when_nested(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("a.x"):
                with tracer.span("b.y"):
                    raise ValueError
        assert len(tracer.spans) == 2

    def test_point_event(self, tracer):
        tracer.event("engine.job_done")
        (span,) = tracer.spans
        assert span.duration == 0.0


class TestDisabledNoop:
    def test_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("unfold.run") is _NOOP
        assert tracer.timed("closure.mcc") is _NOOP

    def test_nothing_recorded(self):
        tracer = Tracer(enabled=False)
        with tracer.span("unfold.run"):
            pass
        tracer.event("engine.job_done")
        tracer.incr("search.nodes", 5)
        tracer.gauge("x.y", 1.0)
        tracer.gauge_max("x.z", 2.0)
        tracer.add_time("closure.mcc", 0.5)
        with tracer.timed("closure.mcc"):
            pass
        assert tracer.spans == []
        assert tracer.counters == {}
        assert tracer.gauges == {}
        assert tracer.timers == {}

    def test_stopwatch_measures_even_when_disabled(self):
        tracer = Tracer(enabled=False)
        with tracer.stopwatch("bench.case") as watch:
            pass
        assert watch.seconds >= 0.0
        assert tracer.timers == {}  # but nothing is registered

    def test_stopwatch_registers_when_enabled(self):
        tracer = Tracer(enabled=True)
        with tracer.stopwatch("bench.case"):
            pass
        calls, seconds = tracer.timers["bench.case"]
        assert calls == 1 and seconds >= 0.0

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert Tracer().enabled
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not Tracer().enabled
        monkeypatch.delenv("REPRO_TRACE")
        assert not Tracer().enabled


class TestCountersGaugesTimers:
    def test_incr_accumulates(self, tracer):
        tracer.incr("search.nodes")
        tracer.incr("search.nodes", 41)
        assert tracer.counters["search.nodes"] == 42

    def test_gauge_last_vs_max(self, tracer):
        tracer.gauge("q.size", 5)
        tracer.gauge("q.size", 3)
        assert tracer.gauges["q.size"] == 3
        tracer.gauge_max("q.peak", 5)
        tracer.gauge_max("q.peak", 3)
        assert tracer.gauges["q.peak"] == 5

    def test_timer_accumulates_calls(self, tracer):
        tracer.add_time("closure.mcc", 0.25)
        tracer.add_time("closure.mcc", 0.25, calls=3)
        assert tracer.timers["closure.mcc"] == (4, 0.5)

    def test_counter_thread_safety(self, tracer):
        def hammer():
            for _ in range(2000):
                tracer.incr("search.nodes")
                tracer.add_time("closure.mcc", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert tracer.counters["search.nodes"] == 16000
        calls, seconds = tracer.timers["closure.mcc"]
        assert calls == 16000
        assert seconds == pytest.approx(16.0, rel=1e-6)

    def test_span_thread_isolation(self, tracer):
        """Parent stacks are thread-local: parallel spans stay roots."""
        def worker():
            with tracer.span("unfold.run"):
                pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        with tracer.span("search.pairs"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        workers = [s for s in tracer.spans if s.name == "unfold.run"]
        assert len(workers) == 4
        assert all(s.parent_id is None for s in workers)

    def test_reset(self, tracer):
        with tracer.span("unfold.run"):
            tracer.incr("search.nodes")
        tracer.reset()
        assert tracer.spans == [] and tracer.counters == {}
        assert tracer.enabled  # reset keeps the flag


class TestPhaseTimes:
    def test_all_phases_present(self, tracer):
        phases = tracer.phase_times()
        assert set(phases) == set(PHASE_PREFIXES) | {"total"}
        assert all(value == 0.0 for value in phases.values())

    def test_timers_and_spans_fold_in(self, tracer):
        with tracer.span("unfold.run"):
            pass
        tracer.add_time("sat.solve", 0.5)
        phases = tracer.phase_times()
        assert phases["unfold"] > 0.0
        assert phases["solver"] == pytest.approx(0.5)

    def test_same_phase_nesting_not_double_counted(self):
        spans = [
            Span(1, "unfold.run", 0.0, 10.0, None, 0),
            Span(2, "unfold.context", 2.0, 6.0, 1, 0),
        ]
        phases = phase_times_from(spans, {})
        assert phases["unfold"] == pytest.approx(10.0)
        assert phases["total"] == pytest.approx(10.0)

    def test_cross_phase_nesting_counted_in_both(self):
        spans = [
            Span(1, "search.pairs", 0.0, 10.0, None, 0),
            Span(2, "closure.mcc_span", 1.0, 3.0, 1, 0),
        ]
        phases = phase_times_from(spans, {})
        assert phases["solver"] == pytest.approx(10.0)
        assert phases["closure"] == pytest.approx(2.0)

    def test_total_from_roots_only(self):
        spans = [
            Span(1, "profile.usc", 0.0, 4.0, None, 0),
            Span(2, "search.pairs", 1.0, 3.0, 1, 0),
            Span(3, "profile.csc", 4.0, 6.0, None, 0),
        ]
        phases = phase_times_from(spans, {})
        assert phases["total"] == pytest.approx(6.0)
        assert phases["solver"] == pytest.approx(2.0)


class TestModuleLevelApi:
    def test_default_tracer_swap_and_helpers(self):
        from repro import obs

        probe = Tracer(enabled=True)
        previous = obs.set_tracer(probe)
        try:
            assert obs.get_tracer() is probe
            assert obs.enabled()
            with obs.trace("unfold.run"):
                obs.incr("search.nodes")
            obs.gauge_max("unfold.queue_peak", 7)
            assert probe.counters["search.nodes"] == 1
            assert obs.snapshot()["counters"] == {"search.nodes": 1}
            assert obs.phase_times()["unfold"] > 0.0
        finally:
            obs.set_tracer(previous)
