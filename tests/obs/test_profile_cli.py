"""End-to-end tests of `repro-stg profile` and the --trace-out options."""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.cli import main

VME_G = str(Path(__file__).resolve().parents[2] / "examples" / "vme_bus.g")


@pytest.fixture(autouse=True)
def clean_tracer():
    """Profile/--trace-out must leave the default tracer disabled and the
    registry free of leftovers for the next command."""
    yield
    tracer = obs.get_tracer()
    assert not tracer.enabled
    tracer.reset()


class TestProfileText:
    def test_phase_table_and_verdicts(self, capsys):
        assert main(["profile", VME_G]) == 0
        out = capsys.readouterr().out
        assert "Phase breakdown: vme-read" in out
        for phase in ("parse", "unfold", "closure", "solver", "lint", "total"):
            assert phase in out
        assert "usc: violated" in out
        assert "csc: violated" in out
        assert "search.nodes" in out
        assert "unfold.queue_peak" in out

    def test_property_selection(self, capsys):
        assert main(["profile", VME_G, "-p", "usc"]) == 0
        out = capsys.readouterr().out
        assert "usc: violated" in out
        assert "csc:" not in out

    def test_registered_model_name(self, capsys):
        assert main(["profile", "RING", "-p", "usc"]) == 0
        assert "usc: violated" in capsys.readouterr().out

    def test_sg_method(self, capsys):
        assert main(["profile", VME_G, "-m", "sg", "-p", "csc"]) == 0
        assert "csc: violated" in capsys.readouterr().out


class TestProfileJson:
    def test_schema_and_phase_coverage(self, capsys):
        assert main(["profile", VME_G, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-profile/1"
        assert document["target"] == "vme-read"
        assert document["method"] == "ilp"
        assert document["properties"] == {"usc": "violated", "csc": "violated"}
        # the acceptance criterion: at least unfold, closure, solver, total
        assert {"unfold", "closure", "solver", "total"} <= set(document["phases"])
        assert document["phases"]["total"] > 0.0
        assert document["phases"]["unfold"] > 0.0
        assert document["counters"]["unfold.events"] == 24
        assert document["counters"]["unfold.cutoffs"] == 2
        assert document["counters"]["search.nodes"] > 0

    def test_trace_out_combined(self, tmp_path, capsys):
        trace = str(tmp_path / "p.jsonl")
        assert main(["profile", VME_G, "--json", "--trace-out", trace]) == 0
        json.loads(capsys.readouterr().out)
        snapshot = obs.read_jsonl(trace)
        names = {span["name"] for span in snapshot["spans"]}
        assert "unfold.run" in names and "profile.usc" in names


class TestTraceOut:
    def test_check_writes_valid_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "check.jsonl")
        assert main(["check", VME_G, "--trace-out", trace]) == 1
        err = capsys.readouterr().err
        assert f"records written to {trace}" in err
        snapshot = obs.read_jsonl(trace)
        names = {span["name"] for span in snapshot["spans"]}
        assert "unfold.run" in names
        # default check is csc only: one unfolding of the 12-event prefix
        assert snapshot["counters"]["unfold.events"] == 12

    def test_check_without_trace_out_untraced(self, capsys):
        assert main(["check", VME_G]) == 1
        assert obs.get_tracer().spans == []

    def test_batch_writes_trace_and_phase_footer(self, tmp_path, capsys):
        trace = str(tmp_path / "batch.jsonl")
        assert (
            main(
                ["batch", VME_G, "--jobs", "0", "--no-cache",
                 "--trace-out", trace]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "phases:" in captured.out  # EngineStats.report() breakdown
        snapshot = obs.read_jsonl(trace)
        names = {span["name"] for span in snapshot["spans"]}
        assert "engine.job_done" in names  # point events interleaved
        assert "lint.run" in names
