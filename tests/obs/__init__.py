"""Tests of the repro.obs observability subsystem."""
