"""JSON / JSONL export round-trips and error handling."""

import io
import json

import pytest

from repro.obs.export import (
    TRACE_SCHEMA,
    iter_jsonl_records,
    read_jsonl,
    to_json,
    write_jsonl,
)
from repro.obs.tracer import Tracer


@pytest.fixture
def populated():
    tracer = Tracer(enabled=True)
    with tracer.span("unfold.run"):
        with tracer.span("unfold.context"):
            pass
    tracer.incr("search.nodes", 42)
    tracer.gauge_max("unfold.queue_peak", 3)
    tracer.add_time("closure.mcc", 0.125, calls=5)
    return tracer


class TestJson:
    def test_to_json_is_snapshot(self, populated):
        document = json.loads(to_json(populated))
        assert document["schema"] == TRACE_SCHEMA
        assert document["counters"] == {"search.nodes": 42}
        assert document["timers"]["closure.mcc"] == {"calls": 5, "seconds": 0.125}
        assert len(document["spans"]) == 2


class TestJsonl:
    def test_meta_header_first(self, populated):
        records = iter_jsonl_records(populated)
        assert records[0] == {
            "kind": "meta",
            "schema": TRACE_SCHEMA,
            "spans": 2,
            "counters": 1,
        }
        kinds = [record["kind"] for record in records[1:]]
        assert kinds == ["span", "span", "counter", "gauge", "timer"]

    def test_round_trip_via_file(self, populated, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        count = write_jsonl(populated, path)
        assert count == 6
        snapshot = read_jsonl(path)
        assert snapshot["counters"] == {"search.nodes": 42}
        assert snapshot["gauges"] == {"unfold.queue_peak": 3}
        assert snapshot["timers"]["closure.mcc"]["calls"] == 5
        names = [span["name"] for span in snapshot["spans"]]
        assert names == ["unfold.context", "unfold.run"]
        # nesting survives the round trip
        by_name = {span["name"]: span for span in snapshot["spans"]}
        assert by_name["unfold.context"]["parent"] == by_name["unfold.run"]["id"]

    def test_round_trip_via_stream(self, populated):
        buffer = io.StringIO()
        write_jsonl(populated, buffer)
        buffer.seek(0)
        snapshot = read_jsonl(buffer)
        assert snapshot["schema"] == TRACE_SCHEMA

    def test_blank_lines_tolerated(self, populated):
        buffer = io.StringIO()
        write_jsonl(populated, buffer)
        content = "\n" + buffer.getvalue() + "\n\n"
        assert read_jsonl(io.StringIO(content))["counters"]


class TestJsonlErrors:
    def test_malformed_line(self):
        with pytest.raises(ValueError, match="line 1 is not JSON"):
            read_jsonl(io.StringIO("not json\n"))

    def test_missing_header(self):
        line = json.dumps({"kind": "counter", "name": "x", "value": 1})
        with pytest.raises(ValueError, match="no meta header"):
            read_jsonl(io.StringIO(line + "\n"))

    def test_empty_file(self):
        with pytest.raises(ValueError, match="no meta header"):
            read_jsonl(io.StringIO(""))

    def test_wrong_schema(self):
        header = json.dumps({"kind": "meta", "schema": "repro-trace/99"})
        with pytest.raises(ValueError, match="unsupported trace schema"):
            read_jsonl(io.StringIO(header + "\n"))

    def test_unknown_record_kind(self, populated):
        buffer = io.StringIO()
        write_jsonl(populated, buffer)
        content = buffer.getvalue() + json.dumps({"kind": "mystery"}) + "\n"
        with pytest.raises(ValueError, match="unknown trace record kind"):
            read_jsonl(io.StringIO(content))
