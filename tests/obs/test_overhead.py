"""The overhead contract: instrumentation is inert while tracing is off.

Wall-clock assertions are flaky in CI, so the 5%-overhead guarantee is
tested structurally instead: with the default tracer disabled, a full
verification run must leave the registry completely untouched (proving
every guarded call site short-circuited), and the no-op fast path must
not allocate fresh context managers.
"""

from repro import obs
from repro.core import check_csc, check_usc
from repro.models import vme_bus
from repro.obs.tracer import Tracer, _NOOP
from repro.unfolding import unfold


class TestDisabledFastPath:
    def test_full_check_leaves_registry_untouched(self):
        tracer = obs.get_tracer()
        assert not tracer.enabled
        prefix = unfold(vme_bus())
        assert not check_usc(prefix).holds
        assert not check_csc(prefix).holds
        assert tracer.spans == []
        assert tracer.counters == {}
        assert tracer.gauges == {}
        assert tracer.timers == {}

    def test_noop_span_is_not_allocated_per_call(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a.b") is tracer.span("c.d") is _NOOP

    def test_same_run_traced_does_record(self):
        probe = Tracer(enabled=True)
        previous = obs.set_tracer(probe)
        try:
            prefix = unfold(vme_bus())
            check_csc(prefix)
        finally:
            obs.set_tracer(previous)
        assert probe.counters["unfold.events"] == 12
        assert probe.counters["unfold.cutoffs"] == 1
        assert probe.counters["search.nodes"] > 0
        names = {span.name for span in probe.spans}
        assert "unfold.run" in names
        phases = probe.phase_times()
        assert phases["unfold"] > 0.0 and phases["total"] > 0.0
