"""Schema validation and compare mode of benchmarks/harness.py."""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

_HARNESS_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "harness.py"
_spec = importlib.util.spec_from_file_location("bench_harness", _HARNESS_PATH)
harness = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(harness)


@pytest.fixture(scope="module")
def report():
    """One real (tiny) harness run, shared across the module's tests."""
    return harness.run_suite(
        quick=True, warmup=0, repeat=2, families=["token-ring"]
    )


class TestRunSuite:
    def test_report_is_schema_valid(self, report):
        harness.validate_report(report)

    def test_case_contents(self, report):
        (record,) = report["results"]
        assert record["id"] == "token-ring/n=4/usc"
        assert record["property"] == "usc"
        assert record["holds"] is False  # the token ring has USC conflicts
        assert record["repeats"] == 2
        assert 0.0 <= record["min_s"] <= record["median_s"] <= record["max_s"]
        # the traced probe run attached phases and counters
        assert record["phases"]["total"] > 0.0
        assert record["counters"]["unfold.events"] > 0
        assert record["counters"]["search.nodes"] > 0

    def test_env_capture(self, report):
        env = report["env"]
        assert env["python"].count(".") == 2
        assert env["cpu_count"] >= 1

    def test_probe_does_not_leak_into_default_tracer(self, report):
        from repro import obs

        assert not obs.enabled()
        assert obs.get_tracer().spans == []

    def test_json_serialisable_and_cli_writes(self, tmp_path, monkeypatch, capsys):
        out = tmp_path / "BENCH.json"
        code = harness.main(
            ["--quick", "--warmup", "0", "--repeat", "1",
             "--families", "token-ring", "--out", str(out)]
        )
        assert code == 0
        harness.validate_report(json.loads(out.read_text()))


class TestValidateReport:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            harness.validate_report([])

    def test_rejects_wrong_schema(self, report):
        bad = copy.deepcopy(report)
        bad["schema"] = "repro-bench/99"
        with pytest.raises(ValueError, match="unknown bench schema"):
            harness.validate_report(bad)

    def test_rejects_missing_top_level_key(self, report):
        bad = copy.deepcopy(report)
        del bad["env"]
        with pytest.raises(ValueError, match="missing key 'env'"):
            harness.validate_report(bad)

    def test_rejects_empty_results(self, report):
        bad = copy.deepcopy(report)
        bad["results"] = []
        with pytest.raises(ValueError, match="non-empty results"):
            harness.validate_report(bad)

    def test_rejects_missing_result_field(self, report):
        bad = copy.deepcopy(report)
        del bad["results"][0]["median_s"]
        with pytest.raises(ValueError, match="missing field 'median_s'"):
            harness.validate_report(bad)

    def test_rejects_wrong_field_type(self, report):
        bad = copy.deepcopy(report)
        bad["results"][0]["median_s"] = "fast"
        with pytest.raises(ValueError, match="wrong type"):
            harness.validate_report(bad)

    def test_rejects_inconsistent_timings(self, report):
        bad = copy.deepcopy(report)
        bad["results"][0]["min_s"] = bad["results"][0]["max_s"] + 1.0
        with pytest.raises(ValueError, match="timings inconsistent"):
            harness.validate_report(bad)

    def test_rejects_duplicate_ids(self, report):
        bad = copy.deepcopy(report)
        bad["results"].append(copy.deepcopy(bad["results"][0]))
        with pytest.raises(ValueError, match="duplicate bench result id"):
            harness.validate_report(bad)


class TestCompare:
    def test_identical_reports_clean(self, report):
        assert harness.compare_reports(report, report) == []

    def test_regression_flagged(self, report):
        slow = copy.deepcopy(report)
        slow["results"][0]["median_s"] *= 1.5
        (flag,) = harness.compare_reports(report, slow)
        assert flag["id"] == report["results"][0]["id"]
        assert flag["ratio"] == pytest.approx(1.5)

    def test_threshold_respected(self, report):
        slow = copy.deepcopy(report)
        slow["results"][0]["median_s"] *= 1.15
        assert harness.compare_reports(report, slow) == []
        assert harness.compare_reports(report, slow, threshold=0.10)

    def test_improvement_not_flagged(self, report):
        fast = copy.deepcopy(report)
        fast["results"][0]["median_s"] *= 0.5
        assert harness.compare_reports(report, fast) == []

    def test_new_cases_ignored(self, report):
        grown = copy.deepcopy(report)
        extra = copy.deepcopy(grown["results"][0])
        extra["id"] = "new-family/n=1/csc"
        grown["results"].append(extra)
        assert harness.compare_reports(report, grown) == []

    def test_compare_cli_exit_codes(self, report, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(report))
        slow = copy.deepcopy(report)
        slow["results"][0]["median_s"] *= 2.0
        new.write_text(json.dumps(slow))
        assert harness.main(["compare", str(old), str(old)]) == 0
        assert harness.main(["compare", str(old), str(new)]) == 1
        out = capsys.readouterr().out
        assert "regression" in out


class TestRefineAxis:
    @pytest.fixture(scope="class")
    def refine_report(self):
        pytest.importorskip("scipy")
        return harness.run_suite(
            quick=True, warmup=0, repeat=1, families=["token-ring"],
            refine=(1,),
        )

    def test_refine_counters_recorded(self, refine_report):
        (record,) = refine_report["results"]
        assert record["id"] == "token-ring/n=4/usc/r=1"
        counters = record["refine_counters"]
        assert counters["lp_calls"] > 0
        assert counters["cert_cache_hits"] == 0  # cold run: nothing stored
        # the warm probe replays every certified objective from the store
        assert counters["warm_cert_cache_hits"] > 0
        assert counters["warm_lp_calls"] < counters["lp_calls"]

    def test_refine_counters_validate(self, refine_report):
        harness.validate_report(refine_report)
        bad = copy.deepcopy(refine_report)
        bad["results"][0]["refine_counters"] = "not-a-dict"
        with pytest.raises(ValueError, match="refine_counters"):
            harness.validate_report(bad)


class TestComparePhases:
    def _with_refine_phase(self, report, seconds):
        doctored = copy.deepcopy(report)
        doctored["results"][0]["phases"]["refine"] = seconds
        return doctored

    def test_refine_phase_regression_flagged(self, report):
        old = self._with_refine_phase(report, 0.100)
        new = self._with_refine_phase(report, 0.150)
        (flag,) = harness.compare_reports(old, new)
        assert flag["metric"] == "phase:refine"
        assert flag["ratio"] == pytest.approx(1.5)

    def test_refine_phase_improvement_clean(self, report):
        old = self._with_refine_phase(report, 0.100)
        new = self._with_refine_phase(report, 0.050)
        assert harness.compare_reports(old, new) == []

    def test_phase_only_ignores_median(self, report):
        old = self._with_refine_phase(report, 0.100)
        new = self._with_refine_phase(report, 0.110)
        new["results"][0]["median_s"] = old["results"][0]["median_s"] * 5
        flagged = harness.compare_reports(old, new, include_median=False)
        assert flagged == []  # 10% phase drift + huge median: both ignored
        assert harness.compare_reports(old, new)  # median checked by default

    def test_phase_only_cli_flag(self, report, tmp_path, capsys):
        old = self._with_refine_phase(report, 0.100)
        new = self._with_refine_phase(report, 0.200)
        new["results"][0]["median_s"] = old["results"][0]["median_s"]
        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(json.dumps(old))
        new_path.write_text(json.dumps(new))
        code = harness.main(
            ["compare", str(old_path), str(new_path), "--phase-only"]
        )
        assert code == 1
        assert "phase:refine" in capsys.readouterr().out
