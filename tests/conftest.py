"""Shared fixtures: benchmark STGs and small reference nets."""

from __future__ import annotations

import pytest

from repro.models import (
    TABLE1_BENCHMARKS,
    vme_bus,
    vme_bus_csc_resolved,
)
from repro.petri.generators import chain, choice, cycle, fork_join
from repro.petri.net import PetriNet


@pytest.fixture
def vme():
    return vme_bus()


@pytest.fixture
def vme_csc():
    return vme_bus_csc_resolved()


@pytest.fixture
def simple_net():
    """p0 -> t0 -> p1 -> t1 -> p2 with one initial token."""
    return chain(2)


@pytest.fixture
def ring_net():
    return cycle(4, tokens=1)


@pytest.fixture
def fork_net():
    return fork_join(3)


@pytest.fixture
def choice_net():
    return choice(3, length=2)


@pytest.fixture(params=sorted(TABLE1_BENCHMARKS))
def table1_stg(request):
    """Parametrised over every Table 1 benchmark STG."""
    return TABLE1_BENCHMARKS[request.param]()


#: Expected verdicts of the Table 1 benchmarks, used by several test modules.
TABLE1_VERDICTS = {
    "LAZYRING": dict(usc=False, csc=False),
    "RING": dict(usc=False, csc=True),
    "DUP-4PH-A": dict(usc=False, csc=False),
    "DUP-4PH-B": dict(usc=False, csc=False),
    "DUP-4PH-MTR-A": dict(usc=False, csc=False),
    "DUP-4PH-MTR-B": dict(usc=False, csc=False),
    "DUP-MOD-A": dict(usc=False, csc=False),
    "DUP-MOD-B": dict(usc=False, csc=False),
    "DUP-MOD-C": dict(usc=False, csc=False),
    "CF-SYM-A-CSC": dict(usc=True, csc=True),
    "CF-SYM-B-CSC": dict(usc=True, csc=True),
    "CF-SYM-C-CSC": dict(usc=True, csc=True),
    "CF-SYM-D-CSC": dict(usc=True, csc=True),
    "CF-ASYM-A-CSC": dict(usc=True, csc=True),
    "CF-ASYM-B-CSC": dict(usc=True, csc=True),
}

#: Subset of Table 1 small enough for exhaustive / quadratic oracles.
SMALL_TABLE1 = [
    "LAZYRING",
    "RING",
    "DUP-4PH-A",
    "DUP-4PH-B",
    "DUP-4PH-MTR-A",
    "DUP-4PH-MTR-B",
    "DUP-MOD-A",
    "DUP-MOD-B",
    "DUP-MOD-C",
    "CF-SYM-A-CSC",
    "CF-SYM-B-CSC",
    "CF-ASYM-A-CSC",
]
