"""The int-pair tableau must be pivot-for-pivot equal to the Fraction one.

``repro.lp.simplex`` stores each tableau row as integer numerators over one
shared positive denominator; Bland's rule, the ratio test and the pivot
update are all reformulated on machine integers.  That is only legal if the
reformulation takes *exactly* the same pivot sequence as the textbook
per-cell ``Fraction`` tableau — same entering/leaving choices, same final
basis, same exact optimum and solution point.  This file embeds the
original ``Fraction`` implementation as the reference and pins both against
each other over the separation-LP workload (the nested-pair prescreen LPs
of real models, where the optimiser earns its keep) plus a seeded random
family that exercises all three senses and negative right-hand sides.
"""

import random
from fractions import Fraction

import pytest

from repro.core.context import SolverContext
from repro.core.prescreen import _flow_matrix, nested_pair_rows
from repro.lp import LinearProgram, solve_lp
from repro.lp.simplex import SimplexResult
from repro.models import TABLE1_BENCHMARKS
from repro.unfolding import unfold


def _reference_solve(problem: LinearProgram) -> SimplexResult:
    """The original per-cell Fraction two-phase simplex, verbatim."""
    n = problem.num_vars
    m = len(problem.rows)

    rows = [list(r) for r in problem.rows]
    senses = list(problem.senses)
    rhs = list(problem.rhs)
    for i in range(m):
        if rhs[i] < 0:
            rows[i] = [-c for c in rows[i]]
            rhs[i] = -rhs[i]
            senses[i] = {"<=": ">=", ">=": "<=", "==": "=="}[senses[i]]

    slack_count = sum(1 for s in senses if s in ("<=", ">="))
    total = n + slack_count
    art_needed = [s in (">=", "==") for s in senses]
    artificial_count = sum(art_needed)
    width = total + artificial_count

    tableau = []
    basis = []
    slack_index = n
    art_index = total
    for i in range(m):
        row = [Fraction(0)] * width
        for j in range(n):
            row[j] = rows[i][j]
        if senses[i] == "<=":
            row[slack_index] = Fraction(1)
            basis.append(slack_index)
            slack_index += 1
        elif senses[i] == ">=":
            row[slack_index] = Fraction(-1)
            slack_index += 1
            row[art_index] = Fraction(1)
            basis.append(art_index)
            art_index += 1
        else:
            row[art_index] = Fraction(1)
            basis.append(art_index)
            art_index += 1
        row.append(rhs[i])
        tableau.append(row)

    def pivot(objective_row):
        while True:
            entering = None
            for j in range(width):
                if objective_row[j] > 0:
                    entering = j
                    break
            if entering is None:
                return True
            leaving = None
            best = None
            for i in range(m):
                coeff = tableau[i][entering]
                if coeff > 0:
                    ratio = tableau[i][-1] / coeff
                    if best is None or ratio < best or (
                        ratio == best and basis[i] < basis[leaving]
                    ):
                        best = ratio
                        leaving = i
            if leaving is None:
                return False
            _do_pivot(objective_row, leaving, entering)

    def _do_pivot(objective_row, leaving, entering):
        pivot_value = tableau[leaving][entering]
        tableau[leaving] = [c / pivot_value for c in tableau[leaving]]
        for i in range(m):
            if i != leaving and tableau[i][entering] != 0:
                factor = tableau[i][entering]
                tableau[i] = [
                    a - factor * b
                    for a, b in zip(tableau[i], tableau[leaving])
                ]
        factor = objective_row[entering]
        if factor != 0:
            objective_row[:] = [
                a - factor * b
                for a, b in zip(objective_row, tableau[leaving])
            ]
        basis[leaving] = entering

    if artificial_count:
        phase1 = [Fraction(0)] * width + [Fraction(0)]
        for j in range(total, width):
            phase1[j] = Fraction(-1)
        for i in range(m):
            if basis[i] >= total:
                phase1 = [a + b for a, b in zip(phase1, tableau[i])]
        bounded = pivot(phase1)
        assert bounded, "phase 1 is always bounded"
        if phase1[-1] != 0:
            return SimplexResult(False, None, None)
        for i in range(m):
            if basis[i] >= total:
                for j in range(total):
                    if tableau[i][j] != 0:
                        _do_pivot(phase1, i, j)
                        break

    objective_row = [Fraction(0)] * width + [Fraction(0)]
    for j in range(n):
        objective_row[j] = Fraction(problem.objective[j])
    for j in range(total, width):
        objective_row[j] = Fraction(-10**12)
    for i in range(m):
        factor = objective_row[basis[i]]
        if factor != 0:
            objective_row = [
                a - factor * b for a, b in zip(objective_row, tableau[i])
            ]
    bounded = pivot(objective_row)

    solution = [Fraction(0)] * n
    for i in range(m):
        if basis[i] < n:
            solution[basis[i]] = tableau[i][-1]
    if not bounded:
        return SimplexResult(True, None, solution)
    value = sum(c * x for c, x in zip(problem.objective, solution))
    return SimplexResult(True, value, solution)


def _assert_equivalent(problem: LinearProgram) -> None:
    fast = solve_lp(problem)
    slow = _reference_solve(problem)
    assert fast.feasible == slow.feasible
    assert fast.objective_value == slow.objective_value
    assert fast.solution == slow.solution


class TestSeparationLpSuite:
    """The real workload: nested-pair prescreen LPs of Table-1 models."""

    @pytest.mark.parametrize("name", ["RING", "DUP-4PH-A", "DUP-MOD-A"])
    def test_prescreen_objectives_match(self, name):
        context = SolverContext(unfold(TABLE1_BENCHMARKS[name]()))
        constraints = list(nested_pair_rows(context))
        flow = _flow_matrix(context)
        n = context.num_vars
        checked = 0
        for place_row in flow:
            if not place_row.any():
                continue
            diff = [Fraction(-int(c)) for c in place_row] + [
                Fraction(int(c)) for c in place_row
            ]
            for sign in (1, -1):
                problem = LinearProgram.feasibility(2 * n, constraints)
                problem.add_upper_bounds(1)
                problem.objective = [sign * c for c in diff]
                _assert_equivalent(problem)
                checked += 1
            if checked >= 4:  # two places per model keep the suite quick
                break
        assert checked


class TestRandomFamily:
    def test_seeded_random_lps_match(self):
        rng = random.Random(20260808)
        for _ in range(40):
            n = rng.randint(1, 5)
            m = rng.randint(1, 6)
            constraints = []
            for _ in range(m):
                coeffs = [Fraction(rng.randint(-3, 3)) for _ in range(n)]
                sense = rng.choice(["<=", ">=", "=="])
                bound = Fraction(rng.randint(-4, 6))
                constraints.append((coeffs, sense, bound))
            problem = LinearProgram.feasibility(n, constraints)
            problem.add_upper_bounds(rng.randint(1, 3))
            problem.objective = [
                Fraction(rng.randint(-2, 3)) for _ in range(n)
            ]
            _assert_equivalent(problem)

    def test_fractional_coefficients_match(self):
        rng = random.Random(7)
        for _ in range(20):
            n = rng.randint(1, 4)
            constraints = [
                (
                    [
                        Fraction(rng.randint(-6, 6), rng.randint(1, 4))
                        for _ in range(n)
                    ],
                    rng.choice(["<=", ">=", "=="]),
                    Fraction(rng.randint(-3, 9), rng.randint(1, 3)),
                )
                for _ in range(rng.randint(1, 4))
            ]
            problem = LinearProgram.feasibility(n, constraints)
            problem.add_upper_bounds(2)
            problem.objective = [
                Fraction(rng.randint(-3, 3), rng.randint(1, 2))
                for _ in range(n)
            ]
            _assert_equivalent(problem)
