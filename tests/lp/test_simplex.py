"""Tests for the exact-rational simplex."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import LinearProgram, solve_lp


def lp(num_vars, constraints, objective=None):
    problem = LinearProgram.feasibility(num_vars, constraints)
    if objective is not None:
        problem.objective = [Fraction(c) for c in objective]
    return problem


class TestFeasibility:
    def test_trivial(self):
        assert solve_lp(lp(1, [([1], "<=", 5)])).feasible

    def test_infeasible_pair(self):
        result = solve_lp(lp(1, [([1], ">=", 3), ([1], "<=", 2)]))
        assert not result.feasible

    def test_equality(self):
        result = solve_lp(lp(2, [([1, 1], "==", 4), ([1, -1], "==", 0)]))
        assert result.feasible
        assert result.solution == [Fraction(2), Fraction(2)]

    def test_infeasible_equalities(self):
        assert not solve_lp(
            lp(1, [([1], "==", 1), ([1], "==", 2)])
        ).feasible

    def test_negative_rhs_normalised(self):
        # x >= -1 is vacuous under x >= 0
        assert solve_lp(lp(1, [([1], ">=", -1)])).feasible

    def test_nonnegativity_is_implicit(self):
        # x <= -2 contradicts x >= 0
        assert not solve_lp(lp(1, [([1], "<=", -2)])).feasible


class TestOptimisation:
    def test_simple_max(self):
        result = solve_lp(
            lp(2, [([1, 1], "<=", 4), ([1, 0], "<=", 3)], objective=[3, 2])
        )
        assert result.feasible
        assert result.objective_value == Fraction(11)  # x=3, y=1

    def test_degenerate_cycling_guard(self):
        """The classical Beale cycling example must terminate (Bland)."""
        constraints = [
            ([Fraction(1, 4), -8, -1, 9], "<=", 0),
            ([Fraction(1, 2), -12, Fraction(-1, 2), 3], "<=", 0),
            ([0, 0, 1, 0], "<=", 1),
        ]
        result = solve_lp(
            lp(4, constraints, objective=[Fraction(3, 4), -20, Fraction(1, 2), -6])
        )
        assert result.feasible
        assert result.objective_value == Fraction(5, 4)

    def test_unbounded(self):
        result = solve_lp(lp(1, [([1], ">=", 0)], objective=[1]))
        assert result.feasible
        assert result.objective_value is None

    def test_exact_fractions(self):
        result = solve_lp(
            lp(1, [([3], "<=", 1)], objective=[1])
        )
        assert result.objective_value == Fraction(1, 3)


class TestAddUpperBounds:
    def test_box_constraints(self):
        problem = lp(2, [([1, 1], ">=", 1)], objective=[1, 1])
        problem.add_upper_bounds(1)
        result = solve_lp(problem)
        assert result.objective_value == Fraction(2)


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.lists(st.integers(-3, 3), min_size=3, max_size=3),
                st.sampled_from(["<=", ">="]),
                st.integers(-5, 5),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_solution_satisfies_constraints(self, raw):
        problem = lp(3, raw)
        result = solve_lp(problem)
        if not result.feasible:
            return
        x = result.solution
        assert all(v >= 0 for v in x)
        for coeffs, sense, bound in raw:
            value = sum(Fraction(c) * v for c, v in zip(coeffs, x))
            if sense == "<=":
                assert value <= bound
            else:
                assert value >= bound

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.lists(st.integers(0, 3), min_size=2, max_size=2),
                st.integers(0, 5),
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_nonnegative_systems_always_feasible(self, raw):
        """A x <= b with A, b >= 0 always admits x = 0."""
        constraints = [(coeffs, "<=", bound) for coeffs, bound in raw]
        assert solve_lp(lp(2, constraints)).feasible
