"""Tests for the benchmark harness modules (they double as experiment code,
so their data paths deserve coverage of their own)."""

import pytest

from repro.bench.ablation import ablation_rows, run_ablation
from repro.bench.figures import figure1_report, figure2_report, figure3_report
from repro.bench.memory import memory_rows, run_memory
from repro.bench.scalable import scalable_rows, run_scalable
from repro.bench.table1 import run_table1, table1_rows


class TestTable1:
    def test_row_contents(self):
        rows = table1_rows(names=["RING", "DUP-4PH-A"], run_baseline=True)
        by_name = {r.name: r for r in rows}
        ring = by_name["RING"]
        assert (ring.places, ring.transitions, ring.signals) == (12, 12, 6)
        assert not ring.usc_holds and ring.csc_holds
        assert ring.baseline_states == 12
        dup = by_name["DUP-4PH-A"]
        assert not dup.csc_holds
        assert dup.cutoffs >= 1

    def test_baseline_skip(self):
        rows = table1_rows(names=["CF-SYM-C-CSC"], run_baseline=True)
        assert rows[0].baseline_time is None  # slow row skipped by default

    def test_no_baseline(self):
        rows = table1_rows(names=["RING"], run_baseline=False)
        assert rows[0].baseline_time is None

    def test_rendered_table(self):
        text = run_table1(run_baseline=False)
        assert "Problem" in text
        assert "LAZYRING" in text
        assert "CF-ASYM-B-CSC" in text
        assert text.count("\n") >= 16


class TestFigures:
    def test_figure1_facts(self):
        report = figure1_report()
        assert "10110" in report
        assert "Out={d}" in report and "Out={lds}" in report

    def test_figure2_facts(self):
        report = figure2_report()
        assert "|E|=12" in report
        assert "|E_cut|=1" in report
        assert "cut-off" in report

    def test_figure3_facts(self):
        report = figure3_report()
        assert "CSC: holds" in report
        assert "normalcy: violated" in report
        assert "['csc']" in report


class TestScalable:
    def test_rows_shape(self):
        rows = scalable_rows(families=["muller-pipeline"])
        assert len(rows) == 5
        states = [r.states for r in rows]
        events = [r.events for r in rows]
        # exponential states, linear prefix
        assert states[-1] / states[0] > events[-1] / events[0]

    def test_rendered(self):
        text = run_scalable(families=["parallel-forks"])
        assert "parallel-forks" in text


class TestAblation:
    def test_rows_and_ordering(self):
        rows = ablation_rows(models=["RING", "CF-SYM-A-CSC"], node_budget=500_000)
        by_variant = {}
        for row in rows:
            by_variant.setdefault(row.model, {})[row.variant] = row
        ring = by_variant["RING"]
        # the full window search must beat the generic ILP on nodes
        assert ring["window (full)"].nodes < ring["generic 0-1 ILP"].nodes
        cf = by_variant["CF-SYM-A-CSC"]
        assert cf["window (full)"].nodes < cf["no Prop.1 nesting"].nodes

    def test_rendered(self):
        text = run_ablation(models=["RING"])
        assert "window (full)" in text


class TestMemory:
    def test_rows(self):
        rows = memory_rows(max_size=6)
        assert rows
        for row in rows:
            assert row.prefix_size > 0
            assert row.solver_masks > 0

    def test_rendered(self):
        text = run_memory()
        assert "muller-pipeline" in text
