"""Ablation: the Section 4 partial-order search vs crippled variants and
the generic 0-1 ILP encoding (DESIGN.md choices 1, 2, 6)."""

import pytest

from repro.bench.ablation import run_ablation
from repro.core.context import SolverContext
from repro.core.ilp_encoding import check_usc_ilp
from repro.core.search import PairSearch
from repro.models import TABLE1_BENCHMARKS
from repro.unfolding import unfold

MODELS = ["RING", "DUP-MOD-A", "CF-SYM-A-CSC"]


def _usc_question(context, **kwargs):
    search = PairSearch(context, **kwargs)
    for mask_a, mask_b in search.solutions():
        if context.marking_of(mask_a) != context.marking_of(mask_b):
            return True
    return False


@pytest.mark.parametrize("name", MODELS, ids=MODELS)
def test_pair_search_full(benchmark, name):
    context = SolverContext(unfold(TABLE1_BENCHMARKS[name]()))
    benchmark(_usc_question, context)


@pytest.mark.parametrize("name", MODELS, ids=MODELS)
def test_pair_search_no_balance_pruning(benchmark, name):
    context = SolverContext(unfold(TABLE1_BENCHMARKS[name]()))
    benchmark(_usc_question, context, use_balance_pruning=False)


@pytest.mark.parametrize("name", MODELS[:2], ids=MODELS[:2])
def test_pair_search_no_order_propagation(benchmark, name):
    """Only the conflict-carrying models: without propagation the
    conflict-free rows degenerate to near-exhaustive 4^q enumeration."""
    context = SolverContext(unfold(TABLE1_BENCHMARKS[name]()))
    benchmark(_usc_question, context, use_order_propagation=False)


@pytest.mark.parametrize("name", MODELS, ids=MODELS)
def test_generic_ilp_baseline(benchmark, name):
    prefix = unfold(TABLE1_BENCHMARKS[name]())
    holds, _, _ = benchmark(check_usc_ilp, prefix)
    assert holds == name.endswith("-CSC")


@pytest.mark.parametrize("name", MODELS, ids=MODELS)
def test_sat_backend(benchmark, name):
    """The MPSAT-style SAT encoding (extension beyond the paper)."""
    from repro.sat import check_usc_sat

    prefix = unfold(TABLE1_BENCHMARKS[name]())
    report = benchmark(check_usc_sat, prefix)
    assert report.holds == name.endswith("-CSC")


def test_ablation_table_print(benchmark, capsys):
    table = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
