"""Shared benchmark configuration."""

import pytest


def pytest_configure(config):
    # benchmarks double as smoke tests; keep runs reproducible and quiet
    config.option.benchmark_disable_gc = True
