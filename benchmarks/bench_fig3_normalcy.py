"""Figure 3: normalcy checking of the csc-resolved VME controller."""

from repro.bench.figures import figure3_report
from repro.core import check_normalcy
from repro.models import vme_bus_csc_resolved
from repro.stg.normalcy import check_normalcy_state_graph


def test_fig3_normalcy_ip(benchmark):
    stg = vme_bus_csc_resolved()
    report = benchmark(check_normalcy, stg)
    assert not report.normal
    assert report.violating_signals() == ["csc"]


def test_fig3_normalcy_state_graph_baseline(benchmark):
    stg = vme_bus_csc_resolved()
    report = benchmark(check_normalcy_state_graph, stg)
    assert report.violating_signals() == ["csc"]


def test_fig3_print(benchmark, capsys):
    report = benchmark.pedantic(figure3_report, rounds=1, iterations=1)
    assert "neither p-normal nor n-normal" in report
    with capsys.disabled():
        print()
        print(report)
