"""Micro-benchmarks of the substrates: prefix construction and BDD kernel."""

import pytest

from repro.bdd import BDD
from repro.models import TABLE1_BENCHMARKS
from repro.models.scalable import muller_pipeline, parallel_forks
from repro.unfolding import PrefixRelations, unfold

UNFOLD_CASES = {
    "LAZYRING": lambda: TABLE1_BENCHMARKS["LAZYRING"](),
    "CF-SYM-D-CSC": lambda: TABLE1_BENCHMARKS["CF-SYM-D-CSC"](),
    "muller-12": lambda: muller_pipeline(12),
    "parfork-5": lambda: parallel_forks(5),
}


@pytest.mark.parametrize("case", sorted(UNFOLD_CASES), ids=sorted(UNFOLD_CASES))
def test_unfold_speed(benchmark, case):
    stg = UNFOLD_CASES[case]()
    prefix = benchmark(unfold, stg)
    assert prefix.num_events > 0


def test_relations_speed(benchmark):
    prefix = unfold(muller_pipeline(12))
    relations = benchmark(PrefixRelations, prefix)
    assert relations.num_events == prefix.num_events


def test_bdd_apply_chain(benchmark):
    """A representative BDD workload: conjunction of parity constraints."""

    def run():
        m = BDD()
        f = 1
        for i in range(0, 24, 2):
            f = m.and_(f, m.xor_(m.var(i), m.var(i + 1)))
        return m.size(f)

    size = benchmark(run)
    assert size == 36  # 3 nodes per xor pair, 12 pairs conjoined
