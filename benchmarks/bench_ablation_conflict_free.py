"""Ablation: Proposition 1 (nested pairs) and the window reduction on the
dynamically conflict-free benchmarks (DESIGN.md choices 4 and 5)."""

import pytest

from repro.core.context import SolverContext
from repro.core.search import MODE_EQUAL, PairSearch
from repro.core.window import WindowSearch
from repro.models import TABLE1_BENCHMARKS
from repro.unfolding import unfold

MODELS = ["CF-SYM-A-CSC", "CF-SYM-B-CSC", "CF-ASYM-A-CSC"]


def _context(name):
    return SolverContext(unfold(TABLE1_BENCHMARKS[name]()))


@pytest.mark.parametrize("name", MODELS, ids=MODELS)
def test_window_search(benchmark, name):
    context = _context(name)

    def run():
        return list(WindowSearch(context).solutions())

    assert benchmark(run) == []  # conflict-free rows


@pytest.mark.parametrize("name", MODELS, ids=MODELS)
def test_pair_search_nested(benchmark, name):
    context = _context(name)

    def run():
        search = PairSearch(context, mode=MODE_EQUAL, nested_only=True)
        for mask_a, mask_b in search.solutions():
            if context.marking_of(mask_a) != context.marking_of(mask_b):
                return True
        return False

    assert benchmark(run) is False


@pytest.mark.parametrize("name", MODELS[:2], ids=MODELS[:2])
def test_pair_search_unrestricted(benchmark, name):
    """Without Proposition 1 the pair space roughly squares."""
    context = _context(name)

    def run():
        search = PairSearch(context, mode=MODE_EQUAL, nested_only=False)
        for mask_a, mask_b in search.solutions():
            if context.marking_of(mask_a) != context.marking_of(mask_b):
                return True
        return False

    assert benchmark(run) is False
