"""The Section 8 memory claim: O(|E|) working set vs the state space."""

from repro.bench.memory import memory_rows, run_memory


def test_memory_shape(benchmark):
    rows = benchmark.pedantic(memory_rows, rounds=1, iterations=1)
    # the claim: states grow much faster than the prefix.  Compare growth
    # factors between the smallest and the largest instance of each family.
    by_family = {}
    for row in rows:
        by_family.setdefault(row.family, []).append(row)
    for family, family_rows in by_family.items():
        family_rows.sort(key=lambda r: r.size)
        first, last = family_rows[0], family_rows[-1]
        state_growth = last.states / first.states
        prefix_growth = last.prefix_size / first.prefix_size
        assert state_growth > 2 * prefix_growth, family


def test_memory_table_print(benchmark, capsys):
    table = benchmark.pedantic(run_memory, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
