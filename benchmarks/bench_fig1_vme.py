"""Figure 1: the VME bus CSC conflict on the explicit state graph."""

from repro.bench.figures import figure1_report
from repro.models import vme_bus
from repro.stg.stategraph import build_state_graph


def test_fig1_state_graph_conflict(benchmark):
    stg = vme_bus()

    def run():
        graph = build_state_graph(stg)
        return graph.csc_conflicts(first_only=True)

    conflicts = benchmark(run)
    assert conflicts
    assert {conflicts[0].out_a, conflicts[0].out_b} == {
        frozenset({"d"}),
        frozenset({"lds"}),
    }


def test_fig1_print(benchmark, capsys):
    report = benchmark.pedantic(figure1_report, rounds=1, iterations=1)
    assert "10110" in report
    with capsys.disabled():
        print()
        print(report)
