#!/usr/bin/env python
"""The curated benchmark harness: stable timings for regression tracking.

The pytest-benchmark files under ``benchmarks/`` explore the paper's
experiments; this harness is the *performance contract* of the repo.  It
runs a small curated suite over the scalable model families (the families
of the paper's full-version scalable examples), measures each case with
warmup + repeated runs, and writes the median timings together with the
environment (python version, cpu count, git sha) to a schema-versioned
JSON report — ``BENCH_current.json`` at the repo root by default.

Usage::

    PYTHONPATH=src python benchmarks/harness.py              # full suite
    PYTHONPATH=src python benchmarks/harness.py --quick      # CI suite
    PYTHONPATH=src python benchmarks/harness.py compare OLD [NEW]

``compare`` flags every case whose median regressed by at least 20%
(``--threshold`` to change) against the old report and exits non-zero if
any did.  Timing goes through :meth:`repro.obs.Tracer.stopwatch`, which
always measures; each case additionally does one *traced* run (not timed)
to attach the phase breakdown and the counter catalogue to its record.

The report schema is documented in docs/benchmarking.md and validated by
:func:`validate_report` (also used by tests/test_obs and the CI bench job).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

ROOT = Path(__file__).resolve().parent.parent
if not (ROOT / "src").exists():  # pragma: no cover - repo layout invariant
    raise SystemExit("harness.py must live in <repo>/benchmarks/")
sys.path.insert(0, str(ROOT / "src"))

from repro import obs  # noqa: E402
from repro.core import check_csc, check_usc  # noqa: E402
from repro.obs.tracer import Tracer  # noqa: E402
from repro.unfolding import unfold  # noqa: E402

#: Bumped whenever the report layout changes incompatibly.
BENCH_SCHEMA = "repro-bench/1"

#: Default output location (the repo-root snapshot CI uploads as artifact).
DEFAULT_OUT = ROOT / "BENCH_current.json"

#: Median regression ratio that `compare` flags (new/old - 1 >= threshold).
DEFAULT_THRESHOLD = 0.20


# -- the curated suite ---------------------------------------------------------

class Case:
    """One benchmark case: verify ``prop`` on ``family(size)``.

    ``workers > 0`` runs the frontier-split parallel search of
    :mod:`repro.core.parallel` and suffixes the case id with ``/w=N`` so
    sequential and parallel timings coexist in one report.  ``facts=True``
    turns on the :mod:`repro.analysis` assistance (``use_facts=``,
    suffix ``/f=1``) — verdicts are identical by contract, so the axis
    isolates the facts engine's overhead/payoff.  ``refine=True`` turns on
    the :mod:`repro.refine` CEGAR prescreen (``use_refinement=``, suffix
    ``/r=1``), same byte-identical-verdict contract.
    """

    def __init__(
        self,
        family: str,
        size: int,
        prop: str,
        workers: int = 0,
        facts: bool = False,
        refine: bool = False,
    ):
        self.family = family
        self.size = size
        self.prop = prop
        self.workers = workers
        self.facts = facts
        self.refine = refine
        suffix = f"/w={workers}" if workers > 0 else ""
        suffix += "/f=1" if facts else ""
        suffix += "/r=1" if refine else ""
        self.case_id = f"{family}/n={size}/{prop}{suffix}"

    def with_workers(self, workers: int) -> "Case":
        return Case(
            self.family, self.size, self.prop, workers, self.facts, self.refine
        )

    def with_facts(self, facts: bool) -> "Case":
        return Case(
            self.family, self.size, self.prop, self.workers, facts, self.refine
        )

    def with_refine(self, refine: bool) -> "Case":
        return Case(
            self.family, self.size, self.prop, self.workers, self.facts, refine
        )

    def build(self):
        from repro.models.counterflow import counterflow_pipeline
        from repro.models.ring import lazy_ring, token_ring
        from repro.models.scalable import muller_pipeline, parallel_forks

        ctor = {
            "muller-pipeline": muller_pipeline,
            "parallel-forks": parallel_forks,
            "token-ring": token_ring,
            "vme-chain": lazy_ring,
            "counterflow": counterflow_pipeline,
        }[self.family]
        return ctor(self.size)

    def run(self, stg, cert_cache=None) -> bool:
        """The timed region: unfold the STG and check the property.

        ``cert_cache`` (a :class:`repro.engine.cache.ResultCache`) is only
        used by the warm-probe measurement of ``/r=1`` cases; the timed
        samples always run cold so the medians stay comparable.
        """
        prefix = unfold(stg)
        check = check_usc if self.prop == "usc" else check_csc
        return check(
            prefix,
            workers=self.workers,
            use_facts=self.facts,
            use_refinement=self.refine,
            cert_cache=cert_cache,
        ).holds


#: The full suite: one slow-ish and one fast size per family so both the
#: constant factors and the growth trend are covered.
SUITE: List[Case] = [
    Case("muller-pipeline", 4, "csc"),
    Case("muller-pipeline", 8, "csc"),
    Case("muller-pipeline", 12, "csc"),
    Case("parallel-forks", 2, "csc"),
    Case("parallel-forks", 3, "csc"),
    Case("token-ring", 4, "usc"),
    Case("token-ring", 6, "usc"),
    Case("vme-chain", 2, "csc"),
    Case("vme-chain", 3, "csc"),
    Case("counterflow", 3, "csc"),
    Case("counterflow", 4, "csc"),
]

#: The CI suite: the small size of each family only.
QUICK_SUITE: List[Case] = [
    Case("muller-pipeline", 4, "csc"),
    Case("parallel-forks", 2, "csc"),
    Case("token-ring", 4, "usc"),
    Case("vme-chain", 2, "csc"),
    Case("counterflow", 3, "csc"),
]


# -- measurement ---------------------------------------------------------------

def capture_env() -> Dict[str, object]:
    """Python/platform/git context a reader needs to judge comparability."""
    try:
        sha: Optional[str] = (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=ROOT,
                capture_output=True,
                text=True,
                timeout=10,
            ).stdout.strip()
            or None
        )
    except (OSError, subprocess.SubprocessError):
        sha = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_sha": sha,
    }


def measure_case(case: Case, warmup: int, repeat: int) -> Dict[str, object]:
    """Warm up, measure ``repeat`` runs, and attach one traced run's data."""
    stg = case.build()  # construction is not part of the timed region

    def reset_facts() -> None:
        # the FactBase is memoized per content hash; drop it so every
        # sample pays (and the /f=1 and /r=1 axes therefore show) the
        # full analysis cost, not a warm-cache read
        if case.facts or case.refine:
            from repro.analysis import clear_memo

            clear_memo()

    tracer = obs.get_tracer()
    for _ in range(warmup):
        reset_facts()
        case.run(stg)
    samples: List[float] = []
    holds = False
    for _ in range(repeat):
        reset_facts()
        with tracer.stopwatch() as watch:
            holds = case.run(stg)
        samples.append(watch.seconds)

    # one extra traced (untimed) run for the phase/counter attribution
    probe = Tracer(enabled=True)
    previous = obs.get_tracer()
    obs.set_tracer(probe)
    try:
        reset_facts()
        case.run(stg)
    finally:
        obs.set_tracer(previous)
    phases = {
        name: seconds
        for name, seconds in probe.phase_times().items()
        if seconds > 0.0 or name == "total"
    }

    record = {
        "id": case.case_id,
        "family": case.family,
        "size": case.size,
        "property": case.prop,
        "workers": case.workers,
        "facts": case.facts,
        "refine": case.refine,
        "holds": holds,
        "repeats": repeat,
        "median_s": statistics.median(samples),
        "min_s": min(samples),
        "max_s": max(samples),
        "phases": phases,
        "counters": dict(probe.counters),
    }
    if case.refine:
        record["refine_counters"] = _refine_counter_probe(
            case, stg, probe, reset_facts
        )
    return record


def _refine_counter_probe(case, stg, cold_probe, reset_facts):
    """The ``/r=1`` counter record: cold LP traffic + warm cache replay.

    The cold numbers come straight from the traced probe run.  The warm
    numbers drive the same case twice against an ephemeral certificate
    store (a temp-dir :class:`~repro.engine.cache.ResultCache`): the first
    run populates the refine-cert domain, the second replays it, so
    ``warm_cert_cache_hits`` shows the steady-state behaviour of repeat
    verification (serve traffic, batch re-runs) and ``warm_lp_calls`` how
    much LP work the cache removes.
    """
    import tempfile

    from repro.engine.cache import ResultCache

    counters = {
        "lp_calls": int(cold_probe.counters.get("refine.lp_calls", 0)),
        "cert_cache_hits": int(
            cold_probe.counters.get("refine.cert_cache_hits", 0)
        ),
        "warm_hits": int(cold_probe.counters.get("refine.warm_hits", 0)),
        "dominated": int(cold_probe.counters.get("refine.dominated", 0)),
    }
    with tempfile.TemporaryDirectory(prefix="repro-bench-certs-") as tmp:
        store = ResultCache(tmp)
        reset_facts()
        case.run(stg, cert_cache=store)  # populate the cert domain
        warm_probe = Tracer(enabled=True)
        previous = obs.get_tracer()
        obs.set_tracer(warm_probe)
        try:
            reset_facts()
            case.run(stg, cert_cache=store)
        finally:
            obs.set_tracer(previous)
    counters["warm_lp_calls"] = int(
        warm_probe.counters.get("refine.lp_calls", 0)
    )
    counters["warm_cert_cache_hits"] = int(
        warm_probe.counters.get("refine.cert_cache_hits", 0)
    )
    return counters


def measure_serve_case(
    case: Case, clients: int, requests_per_client: int = 3
) -> Dict[str, object]:
    """Drive the ``repro.serve`` HTTP service with concurrent clients.

    An in-process server on an ephemeral loopback port (inline pool, lint
    and cache off, so the measurement is serving overhead + engine work,
    comparable with the direct cases) is hammered by ``clients`` threads
    submitting the case's STG and polling to the verdict.  Each request
    carries a distinct ``node_budget`` so in-flight dedup cannot collapse
    the load.  Records end-to-end latency quantiles and requests/sec.
    """
    import threading

    from repro.serve.client import ServeClient
    from repro.serve.server import make_server
    from repro.stg.parser import write_stg

    source = write_stg(case.build())
    total_requests = clients * requests_per_client
    httpd = make_server(
        workers=0,
        lint=False,
        queue_limit=total_requests + 1,
        batch_limit=8,
    )
    server_thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    server_thread.start()
    latencies: List[float] = []
    errors: List[str] = []
    holds_seen: List[bool] = []
    lock = threading.Lock()

    def client_loop(index: int) -> None:
        client = ServeClient(httpd.url, timeout=300.0)
        for request_no in range(requests_per_client):
            # huge, distinct budgets: never binding, never dedup-equal
            budget = 10_000_000 + index * 1_000 + request_no
            begun = time.perf_counter()
            try:
                job = client.check(
                    source=source,
                    properties=[case.prop],
                    node_budget=budget,
                    wait=True,
                    wait_timeout=300.0,
                )
            except Exception as exc:  # noqa: BLE001 - recorded, fails the case
                with lock:
                    errors.append(f"client {index}: {exc!r}")
                return
            elapsed = time.perf_counter() - begun
            with lock:
                latencies.append(elapsed)
                holds_seen.append(bool(job["results"][0]["holds"]))

    threads = [
        threading.Thread(target=client_loop, args=(index,))
        for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    httpd.shutdown()
    httpd.server_close()
    httpd.service.close(timeout=10.0, cancel=True)
    if errors:
        raise RuntimeError(f"serve bench failed: {errors[0]}")
    latencies.sort()

    def quantile(q: float) -> float:
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "id": f"serve/{case.family}/n={case.size}/{case.prop}/c={clients}",
        "family": case.family,
        "size": case.size,
        "property": case.prop,
        "workers": 0,
        "clients": clients,
        "holds": all(holds_seen),
        "repeats": total_requests,
        "median_s": statistics.median(latencies),
        "min_s": latencies[0],
        "max_s": latencies[-1],
        "p50_s": quantile(0.50),
        "p95_s": quantile(0.95),
        "rps": total_requests / wall if wall > 0 else 0.0,
        "phases": {},
        "counters": {},
    }


def run_suite(
    quick: bool = False,
    warmup: int = 1,
    repeat: int = 5,
    families: Optional[Sequence[str]] = None,
    workers: Sequence[int] = (0,),
    serve_clients: Sequence[int] = (),
    facts: Sequence[int] = (0,),
    refine: Sequence[int] = (0,),
) -> Dict[str, object]:
    """Run the suite and return the full schema-versioned report dict.

    ``workers`` is the worker-count axis: each case is measured once per
    entry (0 = sequential), so e.g. ``(0, 2)`` records the speedup pair.
    ``serve_clients`` is the concurrency axis of the HTTP serving scenario:
    each quick-suite case is additionally pushed through a live
    ``repro.serve`` instance once per client count (e.g. ``(1, 4, 16)``).
    ``facts`` is the :mod:`repro.analysis` axis: ``(0, 1)`` measures every
    case both without and with ``use_facts`` assistance.  ``refine`` is the
    :mod:`repro.refine` axis, same convention with ``use_refinement``.
    """
    suite = QUICK_SUITE if quick else SUITE
    if families:
        suite = [case for case in suite if case.family in families]
    axis = list(dict.fromkeys(workers)) or [0]
    facts_axis = list(dict.fromkeys(facts)) or [0]
    refine_axis = list(dict.fromkeys(refine)) or [0]
    timed = [
        case.with_workers(w).with_facts(bool(f)).with_refine(bool(r))
        for case in suite
        for w in axis
        for f in facts_axis
        for r in refine_axis
    ]
    results = []
    for case in timed:
        started = time.perf_counter()
        record = measure_case(case, warmup=warmup, repeat=repeat)
        results.append(record)
        print(
            f"  {case.case_id:<28} median {record['median_s'] * 1e3:8.2f} ms"
            f"   ({time.perf_counter() - started:.2f}s incl. warmup/trace)",
            file=sys.stderr,
        )
    if serve_clients:
        serve_suite = QUICK_SUITE
        if families:
            serve_suite = [c for c in serve_suite if c.family in families]
        for case in serve_suite:
            for clients in dict.fromkeys(serve_clients):
                record = measure_serve_case(case, clients=clients)
                results.append(record)
                print(
                    f"  {record['id']:<28} p50 {record['p50_s'] * 1e3:8.2f} ms"
                    f"  p95 {record['p95_s'] * 1e3:8.2f} ms"
                    f"  {record['rps']:6.1f} req/s",
                    file=sys.stderr,
                )
    return {
        "schema": BENCH_SCHEMA,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": quick,
        "config": {"warmup": warmup, "repeat": repeat},
        "env": capture_env(),
        "results": results,
    }


# -- schema validation ---------------------------------------------------------

_RESULT_FIELDS = {
    "id": str,
    "family": str,
    "size": int,
    "property": str,
    "holds": bool,
    # "workers" is optional (reports predating the axis omit it) and
    # checked separately below.
    "repeats": int,
    "median_s": (int, float),
    "min_s": (int, float),
    "max_s": (int, float),
    "phases": dict,
    "counters": dict,
}


def validate_report(data: object) -> None:
    """Raise :class:`ValueError` unless ``data`` is a valid bench report."""
    if not isinstance(data, dict):
        raise ValueError("bench report must be a JSON object")
    if data.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"unknown bench schema {data.get('schema')!r} "
            f"(expected {BENCH_SCHEMA!r})"
        )
    for key in ("generated", "config", "env", "results"):
        if key not in data:
            raise ValueError(f"bench report missing key {key!r}")
    env = data["env"]
    if not isinstance(env, dict) or "python" not in env or "cpu_count" not in env:
        raise ValueError("bench report env must carry python and cpu_count")
    results = data["results"]
    if not isinstance(results, list) or not results:
        raise ValueError("bench report must carry a non-empty results list")
    seen = set()
    for record in results:
        if not isinstance(record, dict):
            raise ValueError("bench result must be an object")
        for field, types in _RESULT_FIELDS.items():
            if field not in record:
                raise ValueError(f"bench result missing field {field!r}")
            if not isinstance(record[field], types) or isinstance(
                record[field], bool
            ) != (types is bool):
                raise ValueError(
                    f"bench result field {field!r} has wrong type "
                    f"{type(record[field]).__name__}"
                )
        if "workers" in record and (
            not isinstance(record["workers"], int)
            or isinstance(record["workers"], bool)
            or record["workers"] < 0
        ):
            raise ValueError(
                f"bench result {record['id']!r} has invalid workers field"
            )
        # "facts"/"refine" are optional (reports predating the axes omit them)
        for axis_field in ("facts", "refine"):
            if axis_field in record and not isinstance(
                record[axis_field], bool
            ):
                raise ValueError(
                    f"bench result {record['id']!r} has invalid "
                    f"{axis_field} field"
                )
        # /r=1 records carry the refinement counter probe (optional too)
        if "refine_counters" in record and not isinstance(
            record["refine_counters"], dict
        ):
            raise ValueError(
                f"bench result {record['id']!r} has invalid "
                f"refine_counters field"
            )
        # serving-scenario records carry a concurrency axis and throughput
        if "clients" in record and (
            not isinstance(record["clients"], int)
            or isinstance(record["clients"], bool)
            or record["clients"] < 1
        ):
            raise ValueError(
                f"bench result {record['id']!r} has invalid clients field"
            )
        for optional in ("rps", "p50_s", "p95_s"):
            if optional in record and (
                not isinstance(record[optional], (int, float))
                or isinstance(record[optional], bool)
                or record[optional] < 0
            ):
                raise ValueError(
                    f"bench result {record['id']!r} has invalid "
                    f"{optional!r} field"
                )
        if record["median_s"] < 0 or record["min_s"] > record["max_s"]:
            raise ValueError(f"bench result {record['id']!r} timings inconsistent")
        if record["id"] in seen:
            raise ValueError(f"duplicate bench result id {record['id']!r}")
        seen.add(record["id"])


# -- compare -------------------------------------------------------------------

def compare_reports(
    old: Dict[str, object],
    new: Dict[str, object],
    threshold: float = DEFAULT_THRESHOLD,
    phases: Sequence[str] = ("refine",),
    include_median: bool = True,
) -> List[Dict[str, object]]:
    """Cases whose median regressed by >= ``threshold`` (e.g. 0.20 = +20%).

    Besides the end-to-end median, the phase breakdowns of both reports are
    compared for every name in ``phases`` (default: the ``refine`` phase, so
    a refinement-engine slowdown is flagged even when the surrounding
    unfold/solve work hides it in the total).  Phase entries carry
    ``"metric": "phase:<name>"``; median entries ``"metric": "median_s"``.
    ``include_median=False`` restricts the check to the phase comparisons —
    the CI bench job uses it so a machine-speed difference in the total
    cannot mask or fake a refinement regression.
    """
    validate_report(old)
    validate_report(new)
    old_by_id = {r["id"]: r for r in old["results"]}  # type: ignore[index]
    regressions = []
    for record in new["results"]:  # type: ignore[index]
        before = old_by_id.get(record["id"])
        if before is None:
            continue
        base = float(before["median_s"])
        now = float(record["median_s"])
        if include_median and base > 0.0 and now / base - 1.0 >= threshold:
            regressions.append(
                {
                    "id": record["id"],
                    "metric": "median_s",
                    "old_median_s": base,
                    "new_median_s": now,
                    "ratio": now / base,
                }
            )
        for phase in phases:
            base_p = before.get("phases", {}).get(phase)
            new_p = record.get("phases", {}).get(phase)
            if not base_p or new_p is None or float(base_p) <= 0.0:
                continue
            ratio = float(new_p) / float(base_p)
            if ratio - 1.0 >= threshold:
                regressions.append(
                    {
                        "id": record["id"],
                        "metric": f"phase:{phase}",
                        "old_median_s": float(base_p),
                        "new_median_s": float(new_p),
                        "ratio": ratio,
                    }
                )
    return regressions


# -- CLI -----------------------------------------------------------------------

def _cmd_run(args: argparse.Namespace) -> int:
    print(
        f"bench: {'quick' if args.quick else 'full'} suite, "
        f"warmup={args.warmup} repeat={args.repeat}",
        file=sys.stderr,
    )
    report = run_suite(
        quick=args.quick,
        warmup=args.warmup,
        repeat=args.repeat,
        families=args.families,
        workers=args.workers or [0],
        serve_clients=args.serve_clients or [],
        facts=args.facts or [0],
        refine=args.refine or [0],
    )
    validate_report(report)
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    print(f"bench: wrote {len(report['results'])} results to {out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    with open(args.old) as handle:
        old = json.load(handle)
    with open(args.new) as handle:
        new = json.load(handle)
    regressions = compare_reports(
        old,
        new,
        threshold=args.threshold,
        include_median=not args.phase_only,
    )
    if not regressions:
        print(
            f"bench compare: no regression >= {args.threshold:.0%} "
            f"({len(new['results'])} cases checked"
            f"{', refine phase only' if args.phase_only else ''})"
        )
        return 0
    print(f"bench compare: {len(regressions)} regression(s):")
    for entry in regressions:
        metric = entry.get("metric", "median_s")
        label = entry["id"] + (
            f" [{metric}]" if metric != "median_s" else ""
        )
        print(
            f"  {label:<28} {entry['old_median_s'] * 1e3:8.2f} ms -> "
            f"{entry['new_median_s'] * 1e3:8.2f} ms  ({entry['ratio']:.2f}x)"
        )
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="harness.py", description=__doc__.split("\n", 1)[0]
    )
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="run the suite (the default)")
    compare = sub.add_parser(
        "compare", help="diff two bench reports and flag regressions"
    )
    for p in (parser, run):
        p.add_argument(
            "--quick", action="store_true", help="small CI suite (one size/family)"
        )
        p.add_argument("--warmup", type=int, default=1, metavar="N")
        p.add_argument("--repeat", type=int, default=5, metavar="N")
        p.add_argument(
            "--families",
            nargs="*",
            metavar="FAMILY",
            help="restrict to these model families",
        )
        p.add_argument(
            "--workers",
            nargs="*",
            type=int,
            metavar="N",
            help="worker-count axis: measure each case once per value "
            "(default: 0 = sequential only; e.g. --workers 0 2)",
        )
        p.add_argument(
            "--serve-clients",
            nargs="*",
            type=int,
            metavar="N",
            help="also run the HTTP serving scenario over the quick-suite "
            "cases, once per concurrent-client count (e.g. "
            "--serve-clients 1 4 16; default: skipped)",
        )
        p.add_argument(
            "--facts",
            nargs="*",
            type=int,
            choices=(0, 1),
            metavar="0|1",
            help="analysis-facts axis: measure each case once per value "
            "(--facts 0 1 records the with/without pair; default: 0)",
        )
        p.add_argument(
            "--refine",
            nargs="*",
            type=int,
            choices=(0, 1),
            metavar="0|1",
            help="CEGAR-refinement axis: measure each case once per value "
            "(--refine 0 1 records the with/without pair; default: 0)",
        )
        p.add_argument(
            "--out", default=str(DEFAULT_OUT), metavar="FILE.json",
            help=f"report path (default {DEFAULT_OUT.name} at the repo root)",
        )
        p.set_defaults(func=_cmd_run)

    compare.add_argument("old", help="baseline BENCH_*.json")
    compare.add_argument("new", help="candidate BENCH_*.json")
    compare.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        metavar="RATIO",
        help="regression ratio to flag (default 0.20 = +20%%)",
    )
    compare.add_argument(
        "--phase-only",
        action="store_true",
        help="check only the phase comparisons (the refine phase), not the "
        "end-to-end medians — for CI runs on machines unlike the baseline's",
    )
    compare.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
