"""Scalable families: prefix/IP method vs the exponential state space."""

import pytest

from repro.bench.scalable import run_scalable
from repro.core import check_csc, check_usc
from repro.models.counterflow import counterflow_pipeline
from repro.models.ring import lazy_ring, token_ring
from repro.models.scalable import muller_pipeline, parallel_forks
from repro.unfolding import unfold

CASES = {
    "muller-8": (lambda: muller_pipeline(8), check_csc, True),
    "muller-10": (lambda: muller_pipeline(10), check_csc, True),
    "parfork-3": (lambda: parallel_forks(3), check_csc, True),
    "parfork-4": (lambda: parallel_forks(4), check_csc, True),
    "ring-8": (lambda: token_ring(8), check_usc, False),
    "vme-chain-3": (lambda: lazy_ring(3), check_csc, False),
    "counterflow-4": (lambda: counterflow_pipeline(4), check_csc, True),
}


@pytest.mark.parametrize("case", sorted(CASES), ids=sorted(CASES))
def test_scalable_ip_method(benchmark, case):
    ctor, check, expected = CASES[case]
    stg = ctor()

    def run():
        return check(unfold(stg)).holds

    assert benchmark(run) == expected


def test_scalable_sweep_print(benchmark, capsys):
    table = benchmark.pedantic(run_scalable, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(table)
