"""Table 1 regeneration: per-row timings of the paper's method, plus the
full table (including the state-graph baseline column) printed once.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only -s`` to see
the reproduced table next to the per-row statistics.
"""

import pytest

from repro.bench.table1 import SLOW_BASELINE_ROWS, run_table1
from repro.core import check_csc, check_usc
from repro.models import TABLE1_BENCHMARKS
from repro.unfolding import unfold

ROW_NAMES = sorted(TABLE1_BENCHMARKS)

#: expected CSC verdicts (RING's conflicts are USC-only, so CSC holds there)
EXPECTED_CSC = {name: name.endswith("-CSC") or name == "RING" for name in ROW_NAMES}


@pytest.mark.parametrize("name", ROW_NAMES, ids=ROW_NAMES)
def test_table1_clp_column(benchmark, name):
    """The CLP column: unfold + USC + CSC check, first conflict stops."""
    stg = TABLE1_BENCHMARKS[name]()

    def run():
        prefix = unfold(stg)
        usc = check_usc(prefix)
        csc = check_csc(prefix)
        return usc.holds, csc.holds

    usc_holds, csc_holds = benchmark(run)
    assert csc_holds == EXPECTED_CSC[name]
    # the CF rows are the (fully) conflict-free half of the table
    assert usc_holds == name.endswith("-CSC")


@pytest.mark.parametrize(
    "name", [n for n in ROW_NAMES if n not in SLOW_BASELINE_ROWS], ids=str
)
def test_table1_pfy_column(benchmark, name):
    """The Pfy column: symbolic state-graph computation of all conflicts."""
    from repro.symbolic import symbolic_check_both

    stg = TABLE1_BENCHMARKS[name]()
    usc_report, csc_report = benchmark(symbolic_check_both, stg)
    assert csc_report.holds == EXPECTED_CSC[name]
    assert usc_report.holds == name.endswith("-CSC")


def test_table1_full_print(benchmark, capsys):
    """Print the complete reproduced Table 1 (one shot)."""
    table = benchmark.pedantic(
        run_table1, kwargs={"include_slow": False}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(table)
