"""Extension benchmark: the MPSAT-style SAT back-end across Table 1.

Historically the paper's IP approach evolved into SAT encodings (MPSAT);
this benchmark quantifies that trajectory on our reconstruction: the SAT
back-end should match the IP verdicts everywhere and scale gracefully on
the conflict-free rows (clause learning replaces exhaustive search).
"""

import pytest

from repro.models import TABLE1_BENCHMARKS
from repro.sat import check_csc_sat, check_usc_sat
from repro.unfolding import unfold

ROWS = sorted(TABLE1_BENCHMARKS)


@pytest.mark.parametrize("name", ROWS, ids=ROWS)
def test_sat_csc_column(benchmark, name):
    stg = TABLE1_BENCHMARKS[name]()

    def run():
        prefix = unfold(stg)
        usc = check_usc_sat(prefix)
        csc = check_csc_sat(prefix)
        return usc.holds, csc.holds

    usc_holds, csc_holds = benchmark(run)
    assert usc_holds == name.endswith("-CSC")
    assert csc_holds == (name.endswith("-CSC") or name == "RING")
