"""Figure 2: the VME unfolding prefix and the IP conflict detection on it."""

from repro.bench.figures import figure2_report
from repro.core import check_csc
from repro.models import vme_bus
from repro.unfolding import unfold


def test_fig2_unfold_vme(benchmark):
    stg = vme_bus()
    prefix = benchmark(unfold, stg)
    assert prefix.num_events == 12
    assert prefix.num_cutoffs == 1


def test_fig2_ip_conflict_on_prefix(benchmark):
    stg = vme_bus()
    prefix = unfold(stg)
    report = benchmark(check_csc, prefix)
    assert not report.holds
    assert report.witness.out_a != report.witness.out_b


def test_fig2_print(benchmark, capsys):
    report = benchmark.pedantic(figure2_report, rounds=1, iterations=1)
    assert "|E|=12" in report
    with capsys.disabled():
        print()
        print(report)
